// Shared-memory ring transport: same-host multi-process worlds over one
// MAP_SHARED segment and futex wake-ups.
//
// The fabric is created by the launcher *before* forking the worker
// processes (anonymous shared mappings are inherited, so no filesystem
// name and no cleanup).  It holds one SPSC byte ring per ordered process
// pair: the producer side is process i's batched writer (serialized by the
// BufferedEndpoint peer lock), the consumer side is process j's drain
// thread for peer i — single producer, single consumer by construction,
// so head/tail are plain acquire/release atomics.
//
// Blocking uses futexes on 32-bit mirrors of the head/tail counters: a
// consumer with an empty ring waits on the tail word, a producer with a
// full ring waits on the head word; every wait is timed (kWaitSliceMs) and
// re-checks the segment's abort flag, which is how a world learns that the
// launcher reaped a dead sibling (SIGKILL leaves no EOF in shared memory —
// the flag is the kill-a-worker propagation path, CI's abort case).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "parallel/transport/transport.hpp"

namespace mwr::parallel::transport {

/// The pre-fork half: owns the MAP_SHARED segment.  Create in the
/// launcher, then make one ShmEndpoint per child after fork.  The last
/// owner (parent or child) unmaps on destruction; the kernel frees the
/// segment when every mapping is gone.
class ShmFabric {
 public:
  static constexpr std::size_t kDefaultRingBytes = 1u << 20;

  /// Throws TransportError when the segment cannot be mapped.
  static std::shared_ptr<ShmFabric> create(std::size_t processes,
                                           std::size_t global_ranks,
                                           std::size_t ring_bytes =
                                               kDefaultRingBytes);

  ~ShmFabric();
  ShmFabric(const ShmFabric&) = delete;
  ShmFabric& operator=(const ShmFabric&) = delete;

  [[nodiscard]] std::size_t processes() const noexcept { return processes_; }

  /// Sets the segment-wide abort flag and wakes every blocked waiter.
  /// Callable from any process sharing the segment — including the
  /// launcher, which uses it to propagate a worker death.
  void abort_world(const char* reason) noexcept;

  [[nodiscard]] bool world_aborted() const noexcept;
  [[nodiscard]] std::string world_abort_reason() const;

 private:
  friend class ShmEndpoint;
  ShmFabric() = default;

  std::size_t processes_ = 0;
  std::size_t global_ranks_ = 0;
  std::size_t ring_bytes_ = 0;
  void* base_ = nullptr;
  std::size_t mapped_bytes_ = 0;
};

/// One process's endpoint onto an ShmFabric.  Construct after fork with
/// that process's index.
class ShmEndpoint final : public BufferedEndpoint {
 public:
  ShmEndpoint(std::shared_ptr<ShmFabric> fabric, std::size_t index);
  ~ShmEndpoint() override;

  [[nodiscard]] const char* name() const noexcept override { return "shm"; }
  [[nodiscard]] bool recv(std::size_t peer, WireFrame& out) override;

 protected:
  void write_bytes(std::size_t peer, const std::uint8_t* data,
                   std::size_t size) override;
  void abort_fabric(const std::string& reason) override;

 private:
  struct PeerDecode;

  std::shared_ptr<ShmFabric> fabric_;
  std::vector<std::unique_ptr<PeerDecode>> decode_;
};

}  // namespace mwr::parallel::transport
