// Unix-domain-socket transport: multi-process worlds whose processes
// share nothing but the kernel.
//
// The fabric is a matrix of AF_UNIX stream socketpairs, one per unordered
// process pair, created by the launcher *before* forking so every child
// inherits its ends and nothing touches the filesystem namespace.  After
// fork each child claims its own row (closing every fd that belongs to a
// sibling); the launcher releases the whole fabric once all children are
// running.
//
// Stream semantics give the two properties CommWorld needs for free:
// per-peer FIFO delivery (the non-overtaking mailbox guarantee) and a
// definite end-of-stream — a dead peer's sockets read EOF, which recv()
// reports as `false` and the drain thread turns into a world abort.  A
// local abort calls shutdown(SHUT_RDWR) on every owned fd, which both
// wakes this process's blocked reads and shows peers the same EOF.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "parallel/transport/transport.hpp"

namespace mwr::parallel::transport {

/// The pre-fork half: owns one socketpair per unordered process pair.
class UdsFabric {
 public:
  /// Throws TransportError when a socketpair cannot be created.
  static std::shared_ptr<UdsFabric> create(std::size_t processes,
                                           std::size_t global_ranks);

  ~UdsFabric();
  UdsFabric(const UdsFabric&) = delete;
  UdsFabric& operator=(const UdsFabric&) = delete;

  [[nodiscard]] std::size_t processes() const noexcept { return processes_; }

  /// Closes every fd this copy of the fabric still holds.  The launcher
  /// calls this after forking all children: once the parent's ends are
  /// gone, a dead child's sockets read EOF at its peers — the launcher
  /// holding them open would mask worker deaths.
  void close_all() noexcept;

 private:
  friend class UdsEndpoint;

  UdsFabric() = default;

  /// fd this process uses to exchange frames with `peer`, or -1 once
  /// closed.  Row `index` is process index's end of each pair.
  [[nodiscard]] int fd(std::size_t self, std::size_t peer) const noexcept {
    return fds_[self * processes_ + peer];
  }

  /// Closes every fd that does not belong to process `index`.  Called by
  /// the claiming endpoint right after fork.
  void claim(std::size_t index) noexcept;

  std::size_t processes_ = 0;
  std::size_t global_ranks_ = 0;
  std::vector<int> fds_;
};

/// One process's endpoint onto a UdsFabric.  Construct after fork with
/// that process's index; construction claims the fabric row.
class UdsEndpoint final : public BufferedEndpoint {
 public:
  UdsEndpoint(std::shared_ptr<UdsFabric> fabric, std::size_t index);
  ~UdsEndpoint() override;

  [[nodiscard]] const char* name() const noexcept override { return "uds"; }
  [[nodiscard]] bool recv(std::size_t peer, WireFrame& out) override;

 protected:
  void write_bytes(std::size_t peer, const std::uint8_t* data,
                   std::size_t size) override;
  void abort_fabric(const std::string& reason) override;

 private:
  struct PeerDecode;

  std::shared_ptr<UdsFabric> fabric_;
  std::vector<std::unique_ptr<PeerDecode>> decode_;
};

}  // namespace mwr::parallel::transport
