#include "parallel/superstep.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mwr::parallel {

namespace {
// Engine telemetry across every engine in the process: superstep (barrier)
// boundaries crossed, the deepest runnable backlog (how much logical
// parallelism the bounded pool had to absorb), and total fiber slices.
struct EngineMetrics {
  obs::Counter& supersteps;
  obs::Gauge& runnable_ranks;
  obs::Counter& fiber_slices;

  EngineMetrics()
      : supersteps(obs::MetricsRegistry::global().counter(
            "spmd.engine.supersteps")),
        runnable_ranks(obs::MetricsRegistry::global().gauge(
            "spmd.engine.runnable_ranks")),
        fiber_slices(obs::MetricsRegistry::global().counter(
            "spmd.engine.fiber_slices")) {}
};

EngineMetrics& engine_metrics() {
  static EngineMetrics metrics;
  return metrics;
}

std::size_t resolve_workers(std::size_t requested) {
  if (requested != 0) return requested;
  const auto hw = static_cast<std::size_t>(std::thread::hardware_concurrency());
  return hw == 0 ? 1 : hw;
}
}  // namespace

struct SuperstepEngine::Impl {
  enum class State : unsigned char { kRunnable, kRunning, kBlocked, kFinished };
  // What the persistent pool is currently doing.  Workers park while
  // kIdle; a submission flips the mode, bumps `epoch`, and broadcasts.
  enum class Mode : unsigned char { kIdle, kFibers, kParallelFor };

  struct RankSlot {
    std::unique_ptr<Fiber> fiber;
    CoopToken token;
    State state = State::kRunnable;
    // A wake delivered while the rank was running (registered a waiter but
    // had not suspended yet): consumed when the rank next tries to block.
    bool wake_pending = false;
  };

  std::size_t nranks;
  std::size_t nworkers;
  std::size_t stack_bytes;

  // Engine shutdown lock ordering: `mutex` is the innermost lock — no
  // fiber body code runs while a worker holds it (fibers resume only
  // after the worker drops it), so it can never invert against the
  // Mailbox/CountingBarrier locks a rank body takes.
  util::Mutex mutex;
  util::CondVar cv;       // workers: new job / runnable rank / shutdown.
  util::CondVar done_cv;  // submitter: all participants left the job.

  // --- persistent pool (spawned lazily on first submission) ---
  std::vector<std::thread> threads;
  bool shutdown MWR_GUARDED_BY(mutex) = false;
  Mode mode MWR_GUARDED_BY(mutex) = Mode::kIdle;
  std::uint64_t epoch MWR_GUARDED_BY(mutex) = 0;    // bumps per submission.
  std::size_t remaining MWR_GUARDED_BY(mutex) = 0;  // workers still in job.

  // --- fiber-mode job state ---
  // `slots` is structurally written (resize, fiber/token setup) only in
  // run()'s pre-submission section, under the lock while the pool is
  // idle; per-slot state/wake_pending mutate under the lock for real.  A
  // worker resumes `slot.fiber` through a reference taken under the lock
  // while the slot is in State::kRunning, which the state machine makes
  // exclusive.
  std::vector<RankSlot> slots MWR_GUARDED_BY(mutex);
  // One lazily-allocated stack per rank, recycled across runs: run N+1's
  // fibers are seeded on run N's (cold again) stacks, so a resident
  // engine pays the stack allocations once, not once per epoch.
  std::vector<std::unique_ptr<char[]>> rank_stacks MWR_GUARDED_BY(mutex);
  std::deque<int> runnable MWR_GUARDED_BY(mutex);
  std::size_t unfinished MWR_GUARDED_BY(mutex) = 0;
  std::size_t running MWR_GUARDED_BY(mutex) = 0;
  // Ranks suspended in waits an external agent (a transport drain thread)
  // can satisfy; while nonzero, all-blocked is not a deadlock.
  std::size_t external_waiters MWR_GUARDED_BY(mutex) = 0;
  bool aborting MWR_GUARDED_BY(mutex) = false;
  std::size_t aborted_ranks MWR_GUARDED_BY(mutex) = 0;
  std::exception_ptr first_error MWR_GUARDED_BY(mutex);

  // --- parallel_for job state ---
  // The split is fixed before fan-out: chunk size is a pure function of
  // (count, nworkers), and the atomic cursor hands out the pre-decided
  // contiguous chunks in order.  Participants read the job shape under
  // the lock before pulling chunks unlocked.
  const std::function<void(std::size_t)>* for_fn MWR_GUARDED_BY(mutex) =
      nullptr;
  std::size_t for_count MWR_GUARDED_BY(mutex) = 0;
  std::size_t for_chunk MWR_GUARDED_BY(mutex) = 1;
  std::atomic<std::size_t> for_cursor{0};

  // Makes `rank` runnable and pokes one worker.
  void enqueue_locked(int rank) MWR_REQUIRES(mutex) {
    slots[static_cast<std::size_t>(rank)].state = State::kRunnable;
    runnable.push_back(rank);
    engine_metrics().runnable_ranks.record_max(
        static_cast<double>(runnable.size()));
    cv.notify_one();
  }

  // If every unfinished rank is blocked, no progress is possible: unwind
  // them by requeuing with the abort flag set, so their suspension point
  // throws SuperstepAbort and the stacks unwind cleanly.
  void check_deadlock_locked() MWR_REQUIRES(mutex) {
    if (aborting || running != 0 || !runnable.empty() || unfinished == 0 ||
        external_waiters != 0)
      return;
    aborting = true;
    for (std::size_t r = 0; r < slots.size(); ++r) {
      if (slots[r].state == State::kBlocked) {
        ++aborted_ranks;
        enqueue_locked(static_cast<int>(r));
      }
    }
    cv.notify_all();
  }

  // Spawns the pool on first submission (idempotent).  Lazy so an engine
  // that is constructed but never driven costs no threads, and so a
  // single-worker engine used purely for inline parallel_for sweeps
  // never spawns at all.
  void ensure_threads_locked() MWR_REQUIRES(mutex) {
    if (!threads.empty()) return;
    threads.reserve(nworkers);
    for (std::size_t w = 0; w < nworkers; ++w) {
      threads.emplace_back([this] { worker_loop(); });
    }
  }

  // Drains the current fiber job: schedule runnable ranks until every
  // rank finished.  Entered and exited holding the lock.
  void drain_fibers_locked(util::MutexLock& lock) MWR_REQUIRES(mutex) {
    for (;;) {
      while (runnable.empty() && unfinished != 0) cv.wait(mutex);
      if (unfinished == 0) return;
      const int rank = runnable.front();
      runnable.pop_front();
      RankSlot& slot = slots[static_cast<std::size_t>(rank)];
      slot.state = State::kRunning;
      ++running;
      lock.unlock();

      coop_set_current(&slot.token);
      slot.fiber->resume();
      coop_set_current(nullptr);
      engine_metrics().fiber_slices.add(1);

      lock.lock();
      --running;
      if (slot.fiber->finished()) {
        slot.state = State::kFinished;
        if (--unfinished == 0) cv.notify_all();
      } else if (slot.wake_pending) {
        // The wake raced the suspension; run the rank again so it
        // re-checks its predicate.
        slot.wake_pending = false;
        enqueue_locked(rank);
      } else {
        slot.state = State::kBlocked;
      }
      check_deadlock_locked();
    }
  }

  // Pulls pre-split chunks off the cursor until the index space drains.
  // Runs unlocked; an fn exception is recorded (first wins) and fast-
  // forwards the cursor so peers stop pulling new chunks.
  void drain_parallel_for(const std::function<void(std::size_t)>& fn,
                          std::size_t count, std::size_t chunk)
      MWR_EXCLUDES(mutex) {
    for (;;) {
      const std::size_t begin =
          for_cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + chunk, count);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          util::MutexLock lock(mutex);
          if (!first_error) first_error = std::current_exception();
          for_cursor.store(count, std::memory_order_relaxed);
          return;
        }
      }
    }
  }

  void worker_loop() MWR_EXCLUDES(mutex) {
    util::MutexLock lock(mutex);
    std::uint64_t seen = 0;
    for (;;) {
      while (!shutdown && (mode == Mode::kIdle || epoch == seen))
        cv.wait(mutex);
      if (shutdown) return;
      seen = epoch;
      if (mode == Mode::kFibers) {
        drain_fibers_locked(lock);
      } else {
        const std::function<void(std::size_t)>* fn = for_fn;
        const std::size_t count = for_count;
        const std::size_t chunk = for_chunk;
        lock.unlock();
        drain_parallel_for(*fn, count, chunk);
        lock.lock();
      }
      if (--remaining == 0) done_cv.notify_all();
    }
  }
};

SuperstepEngine::SuperstepEngine(std::size_t ranks, Config config)
    : impl_(std::make_unique<Impl>()) {
  if (ranks == 0)
    throw std::invalid_argument("SuperstepEngine needs >= 1 rank");
  impl_->nranks = ranks;
  impl_->nworkers = resolve_workers(config.workers);
  impl_->stack_bytes = config.stack_bytes;
}

SuperstepEngine::~SuperstepEngine() {
  Impl& impl = *impl_;
  {
    util::MutexLock lock(impl.mutex);
    impl.shutdown = true;
    impl.cv.notify_all();
  }
  for (auto& thread : impl.threads) thread.join();
}

std::size_t SuperstepEngine::ranks() const noexcept { return impl_->nranks; }

std::size_t SuperstepEngine::workers() const noexcept {
  return impl_->nworkers;
}

void SuperstepEngine::run(const std::function<void(int)>& body) {
  Impl& impl = *impl_;
  std::exception_ptr first_error;
  std::size_t aborted_ranks = 0;
  {
    util::MutexLock lock(impl.mutex);
    if (impl.mode != Impl::Mode::kIdle)
      throw std::logic_error("SuperstepEngine::run: engine already busy");
    // Re-arm per-run state; slots and rank stacks persist across runs.
    impl.slots.resize(impl.nranks);
    impl.rank_stacks.resize(impl.nranks);
    impl.runnable.clear();
    impl.aborting = false;
    impl.aborted_ranks = 0;
    impl.first_error = nullptr;
    for (std::size_t r = 0; r < impl.nranks; ++r) {
      Impl::RankSlot& slot = impl.slots[r];
      if (!impl.rank_stacks[r])
        impl.rank_stacks[r] = std::make_unique<char[]>(impl.stack_bytes);
      slot.token = CoopToken{this, static_cast<int>(r)};
      slot.state = Impl::State::kRunnable;
      slot.wake_pending = false;
      slot.fiber = std::make_unique<Fiber>(
          [&impl, &body, r] {
            try {
              body(static_cast<int>(r));
            } catch (const SuperstepAbort&) {
              // Engine-initiated unwind of a blocked rank; not a body
              // error.
            } catch (...) {
              util::MutexLock error_lock(impl.mutex);
              if (!impl.first_error)
                impl.first_error = std::current_exception();
            }
          },
          impl.rank_stacks[r].get(), impl.stack_bytes);
      impl.runnable.push_back(static_cast<int>(r));
    }
    impl.unfinished = impl.nranks;
    engine_metrics().runnable_ranks.record_max(
        static_cast<double>(impl.runnable.size()));

    impl.ensure_threads_locked();
    impl.mode = Impl::Mode::kFibers;
    ++impl.epoch;
    impl.remaining = impl.threads.size();
    impl.cv.notify_all();
    while (impl.remaining != 0) impl.done_cv.wait(impl.mutex);
    impl.mode = Impl::Mode::kIdle;

    first_error = impl.first_error;
    aborted_ranks = impl.aborted_ranks;
    // Destroy the fibers now (stacks stay pooled): the fiber entries
    // capture `body`, which dies with this frame.
    for (auto& slot : impl.slots) slot.fiber.reset();
  }
  if (first_error) std::rethrow_exception(first_error);
  if (aborted_ranks != 0) {
    throw std::runtime_error(
        "superstep engine: deadlock — " + std::to_string(aborted_ranks) +
        " of " + std::to_string(impl.nranks) +
        " ranks blocked with no runnable peer (unwound)");
  }
}

void SuperstepEngine::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  Impl& impl = *impl_;
  if (count == 0) return;
  if (impl.nworkers <= 1) {
    // Inline: no wakeups, no cursor, exceptions propagate naturally.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::size_t chunk = 1;
  std::exception_ptr first_error;
  {
    util::MutexLock lock(impl.mutex);
    if (impl.mode != Impl::Mode::kIdle)
      throw std::logic_error(
          "SuperstepEngine::parallel_for: engine already busy");
    // Split before fan-out: the chunk size depends only on the job shape,
    // never on runtime timing, so the decomposition is reproducible.
    chunk = std::max<std::size_t>(1, count / (impl.nworkers * 8));
    impl.for_fn = &fn;
    impl.for_count = count;
    impl.for_chunk = chunk;
    impl.for_cursor.store(0, std::memory_order_relaxed);
    impl.first_error = nullptr;
    impl.ensure_threads_locked();
    impl.mode = Impl::Mode::kParallelFor;
    ++impl.epoch;
    impl.remaining = impl.threads.size();
    impl.cv.notify_all();
  }
  // The caller participates instead of idling behind the pool.
  impl.drain_parallel_for(fn, count, chunk);
  {
    util::MutexLock lock(impl.mutex);
    while (impl.remaining != 0) impl.done_cv.wait(impl.mutex);
    impl.mode = Impl::Mode::kIdle;
    impl.for_fn = nullptr;
    first_error = impl.first_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

void SuperstepEngine::suspend_current() {
  Impl& impl = *impl_;
  Fiber* fiber = Fiber::current();
  {
    util::MutexLock lock(impl.mutex);
    if (impl.aborting) throw SuperstepAbort{};
  }
  fiber->yield();
  // Resumed (possibly on another worker).  Under abort the resume exists
  // only to unwind this stack.
  {
    util::MutexLock lock(impl.mutex);
    if (impl.aborting) throw SuperstepAbort{};
  }
}

void SuperstepEngine::wake(int rank) {
  Impl& impl = *impl_;
  util::MutexLock lock(impl.mutex);
  Impl::RankSlot& slot = impl.slots[static_cast<std::size_t>(rank)];
  switch (slot.state) {
    case Impl::State::kBlocked:
      impl.enqueue_locked(rank);
      break;
    case Impl::State::kRunning:
      slot.wake_pending = true;
      break;
    case Impl::State::kRunnable:
      // Already queued: it will re-check its predicate when it runs.
      break;
    case Impl::State::kFinished:
      // Stale wake for a rank that aborted or returned; ignore.
      break;
  }
}

void SuperstepEngine::note_superstep_boundary() noexcept {
  engine_metrics().supersteps.add(1);
}

void SuperstepEngine::note_external_wait(int delta) noexcept {
  Impl& impl = *impl_;
  util::MutexLock lock(impl.mutex);
  if (delta > 0) {
    impl.external_waiters += static_cast<std::size_t>(delta);
  } else {
    impl.external_waiters -= static_cast<std::size_t>(-delta);
  }
}

}  // namespace mwr::parallel
