#include "parallel/superstep.hpp"

#include <deque>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mwr::parallel {

namespace {
// Engine telemetry across every engine in the process: superstep (barrier)
// boundaries crossed, the deepest runnable backlog (how much logical
// parallelism the bounded pool had to absorb), and total fiber slices.
struct EngineMetrics {
  obs::Counter& supersteps;
  obs::Gauge& runnable_ranks;
  obs::Counter& fiber_slices;

  EngineMetrics()
      : supersteps(obs::MetricsRegistry::global().counter(
            "spmd.engine.supersteps")),
        runnable_ranks(obs::MetricsRegistry::global().gauge(
            "spmd.engine.runnable_ranks")),
        fiber_slices(obs::MetricsRegistry::global().counter(
            "spmd.engine.fiber_slices")) {}
};

EngineMetrics& engine_metrics() {
  static EngineMetrics metrics;
  return metrics;
}

std::size_t resolve_workers(std::size_t requested) {
  if (requested != 0) return requested;
  const auto hw = static_cast<std::size_t>(std::thread::hardware_concurrency());
  return hw == 0 ? 1 : hw;
}
}  // namespace

struct SuperstepEngine::Impl {
  enum class State : unsigned char { kRunnable, kRunning, kBlocked, kFinished };

  struct RankSlot {
    std::unique_ptr<Fiber> fiber;
    CoopToken token;
    State state = State::kRunnable;
    // A wake delivered while the rank was running (registered a waiter but
    // had not suspended yet): consumed when the rank next tries to block.
    bool wake_pending = false;
  };

  std::size_t nranks;
  std::size_t nworkers;
  std::size_t stack_bytes;

  // Engine shutdown lock ordering: `mutex` is the innermost lock — no
  // fiber body code runs while a worker holds it (fibers resume only
  // after the worker drops it), so it can never invert against the
  // Mailbox/CountingBarrier locks a rank body takes.
  util::Mutex mutex;
  util::CondVar cv;
  // `slots` is structurally written (resize, fiber/token setup) only in
  // run()'s pre-spawn section, under the lock for the analyzer's benefit;
  // per-slot state/wake_pending mutate under the lock for real.  A worker
  // resumes `slot.fiber` through a reference taken under the lock while
  // the slot is in State::kRunning, which the state machine makes
  // exclusive.
  std::vector<RankSlot> slots MWR_GUARDED_BY(mutex);
  std::deque<int> runnable MWR_GUARDED_BY(mutex);
  std::size_t unfinished MWR_GUARDED_BY(mutex) = 0;
  std::size_t running MWR_GUARDED_BY(mutex) = 0;
  // Ranks suspended in waits an external agent (a transport drain thread)
  // can satisfy; while nonzero, all-blocked is not a deadlock.
  std::size_t external_waiters MWR_GUARDED_BY(mutex) = 0;
  bool aborting MWR_GUARDED_BY(mutex) = false;
  std::size_t aborted_ranks MWR_GUARDED_BY(mutex) = 0;
  std::exception_ptr first_error MWR_GUARDED_BY(mutex);

  // Makes `rank` runnable and pokes one worker.
  void enqueue_locked(int rank) MWR_REQUIRES(mutex) {
    slots[static_cast<std::size_t>(rank)].state = State::kRunnable;
    runnable.push_back(rank);
    engine_metrics().runnable_ranks.record_max(
        static_cast<double>(runnable.size()));
    cv.notify_one();
  }

  // If every unfinished rank is blocked, no progress is possible: unwind
  // them by requeuing with the abort flag set, so their suspension point
  // throws SuperstepAbort and the stacks unwind cleanly.
  void check_deadlock_locked() MWR_REQUIRES(mutex) {
    if (aborting || running != 0 || !runnable.empty() || unfinished == 0 ||
        external_waiters != 0)
      return;
    aborting = true;
    for (std::size_t r = 0; r < slots.size(); ++r) {
      if (slots[r].state == State::kBlocked) {
        ++aborted_ranks;
        enqueue_locked(static_cast<int>(r));
      }
    }
    cv.notify_all();
  }

  void worker_loop() MWR_EXCLUDES(mutex) {
    util::MutexLock lock(mutex);
    for (;;) {
      while (runnable.empty() && unfinished != 0) cv.wait(mutex);
      if (unfinished == 0) return;
      const int rank = runnable.front();
      runnable.pop_front();
      RankSlot& slot = slots[static_cast<std::size_t>(rank)];
      slot.state = State::kRunning;
      ++running;
      lock.unlock();

      coop_set_current(&slot.token);
      slot.fiber->resume();
      coop_set_current(nullptr);
      engine_metrics().fiber_slices.add(1);

      lock.lock();
      --running;
      if (slot.fiber->finished()) {
        slot.state = State::kFinished;
        if (--unfinished == 0) cv.notify_all();
      } else if (slot.wake_pending) {
        // The wake raced the suspension; run the rank again so it
        // re-checks its predicate.
        slot.wake_pending = false;
        enqueue_locked(rank);
      } else {
        slot.state = State::kBlocked;
      }
      check_deadlock_locked();
    }
  }
};

SuperstepEngine::SuperstepEngine(std::size_t ranks, Config config)
    : impl_(std::make_unique<Impl>()) {
  if (ranks == 0)
    throw std::invalid_argument("SuperstepEngine needs >= 1 rank");
  impl_->nranks = ranks;
  impl_->nworkers = resolve_workers(config.workers);
  impl_->stack_bytes = config.stack_bytes;
}

SuperstepEngine::~SuperstepEngine() = default;

std::size_t SuperstepEngine::ranks() const noexcept { return impl_->nranks; }

std::size_t SuperstepEngine::workers() const noexcept {
  return impl_->nworkers;
}

void SuperstepEngine::run(const std::function<void(int)>& body) {
  Impl& impl = *impl_;
  {
    // Setup runs before any worker exists; the lock is uncontended and
    // exists so the analyzer sees every slots/runnable write guarded.
    util::MutexLock lock(impl.mutex);
    impl.slots.resize(impl.nranks);
    for (std::size_t r = 0; r < impl.nranks; ++r) {
      Impl::RankSlot& slot = impl.slots[r];
      slot.token = CoopToken{this, static_cast<int>(r)};
      slot.fiber = std::make_unique<Fiber>(
          [&impl, &body, r] {
            try {
              body(static_cast<int>(r));
            } catch (const SuperstepAbort&) {
              // Engine-initiated unwind of a blocked rank; not a body
              // error.
            } catch (...) {
              util::MutexLock error_lock(impl.mutex);
              if (!impl.first_error)
                impl.first_error = std::current_exception();
            }
          },
          impl.stack_bytes);
      impl.runnable.push_back(static_cast<int>(r));
    }
    impl.unfinished = impl.nranks;
    engine_metrics().runnable_ranks.record_max(
        static_cast<double>(impl.runnable.size()));
  }

  std::vector<std::thread> workers;
  const std::size_t spawn = std::min(impl.nworkers, impl.nranks);
  workers.reserve(spawn);
  for (std::size_t w = 0; w < spawn; ++w) {
    workers.emplace_back([&impl] { impl.worker_loop(); });
  }
  for (auto& worker : workers) worker.join();

  std::exception_ptr first_error;
  std::size_t aborted_ranks = 0;
  {
    util::MutexLock lock(impl.mutex);
    first_error = impl.first_error;
    aborted_ranks = impl.aborted_ranks;
  }
  if (first_error) std::rethrow_exception(first_error);
  if (aborted_ranks != 0) {
    throw std::runtime_error(
        "superstep engine: deadlock — " + std::to_string(aborted_ranks) +
        " of " + std::to_string(impl.nranks) +
        " ranks blocked with no runnable peer (unwound)");
  }
}

void SuperstepEngine::suspend_current() {
  Impl& impl = *impl_;
  Fiber* fiber = Fiber::current();
  {
    util::MutexLock lock(impl.mutex);
    if (impl.aborting) throw SuperstepAbort{};
  }
  fiber->yield();
  // Resumed (possibly on another worker).  Under abort the resume exists
  // only to unwind this stack.
  {
    util::MutexLock lock(impl.mutex);
    if (impl.aborting) throw SuperstepAbort{};
  }
}

void SuperstepEngine::wake(int rank) {
  Impl& impl = *impl_;
  util::MutexLock lock(impl.mutex);
  Impl::RankSlot& slot = impl.slots[static_cast<std::size_t>(rank)];
  switch (slot.state) {
    case Impl::State::kBlocked:
      impl.enqueue_locked(rank);
      break;
    case Impl::State::kRunning:
      slot.wake_pending = true;
      break;
    case Impl::State::kRunnable:
      // Already queued: it will re-check its predicate when it runs.
      break;
    case Impl::State::kFinished:
      // Stale wake for a rank that aborted or returned; ignore.
      break;
  }
}

void SuperstepEngine::note_superstep_boundary() noexcept {
  engine_metrics().supersteps.add(1);
}

void SuperstepEngine::note_external_wait(int delta) noexcept {
  Impl& impl = *impl_;
  util::MutexLock lock(impl.mutex);
  if (delta > 0) {
    impl.external_waiters += static_cast<std::size_t>(delta);
  } else {
    impl.external_waiters -= static_cast<std::size_t>(-delta);
  }
}

}  // namespace mwr::parallel
