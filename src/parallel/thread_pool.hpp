// Fixed-size worker pool used by the precompute phase and the parallel MWU
// drivers.
//
// Design notes (per the C++ Core Guidelines concurrency rules):
//  - the pool owns its threads and joins them in the destructor (RAII);
//  - tasks are type-erased through std::packaged_task so submit() returns a
//    std::future and exceptions thrown inside a task propagate to the
//    caller, never escaping into the worker loop;
//  - parallel_for_index partitions an index range into contiguous blocks,
//    one per worker, which is how the embarrassingly-parallel pool
//    precomputation of MWRepair is expressed (each worker gets a split RNG
//    stream, not a shared one).
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mwr::parallel {

/// A fixed pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.  Shutdown lock
  /// ordering: takes mutex_ only to set the stop flag, releases it before
  /// joining — so the caller must not hold mutex_ (MWR_EXCLUDES), and must
  /// not be one of this pool's own workers (self-join; asserted at
  /// runtime).  Nested parallel_for_index calls run inline on their worker
  /// and therefore never own the destructor path.
  ~ThreadPool() MWR_EXCLUDES(mutex_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a callable; the returned future carries its result or
  /// exception.  Safe to call from any thread, including from inside tasks
  /// (the pool never blocks enqueue on execution).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    std::packaged_task<R()> task(std::forward<F>(fn));
    std::future<R> result = task.get_future();
    enqueue([t = std::make_shared<std::packaged_task<R()>>(std::move(task))] {
      (*t)();
    });
    return result;
  }

  /// Runs fn(i) for every i in [0, count), blocked into `size()` contiguous
  /// chunks, and waits for completion.  fn must be safe to invoke
  /// concurrently for distinct i.  Exceptions from any chunk are rethrown
  /// (the first one encountered).
  ///
  /// Re-entrant: when called from inside one of this pool's own tasks, the
  /// range runs inline on the calling worker instead of being submitted.
  /// Submitting would deadlock a saturated pool — every worker blocked in
  /// f.get() on chunks queued behind the very tasks doing the blocking.
  void parallel_for_index(std::size_t count,
                          const std::function<void(std::size_t)>& fn)
      MWR_EXCLUDES(mutex_);

 private:
  // Queue entries carry their enqueue time so the worker can attribute
  // queue-wait latency to the observability layer on dequeue.
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Pushes the type-erased task, records queue-depth telemetry, and
  /// wakes one worker.  Throws std::runtime_error after stop.
  void enqueue(std::function<void()> fn) MWR_EXCLUDES(mutex_);

  void worker_loop() MWR_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  util::Mutex mutex_;
  util::CondVar cv_;
  std::queue<Task> queue_ MWR_GUARDED_BY(mutex_);
  bool stopping_ MWR_GUARDED_BY(mutex_) = false;
};

}  // namespace mwr::parallel
