#include "parallel/coop.hpp"

namespace mwr::parallel {

namespace {
thread_local const CoopToken* current_token = nullptr;
}  // namespace

const CoopToken* coop_current() noexcept { return current_token; }

void coop_set_current(const CoopToken* token) noexcept {
  current_token = token;
}

}  // namespace mwr::parallel
