// Per-superstep bump arena for message payloads (DESIGN.md §12).
//
// The PayloadVec small-buffer optimization removes per-message heap traffic
// for payloads up to 4 doubles — but the collective fan-outs (broadcast,
// the allreduce reply wave, the tree broadcast phase) copy one
// heap-allocated vector per destination for anything larger.  This arena
// replaces those allocations with a bump pointer: senders carve payload
// storage out of reusable chunks, receivers release it when the PayloadVec
// dies, and the communicator rewinds the arena at the cycle barrier once
// nothing is outstanding.
//
// Lifetime safety: arena-backed PayloadVecs hold a shared_ptr to the arena,
// so payload storage can never dangle even if the CommWorld (the usual
// owner) is torn down first; and try_reset() refuses to rewind while any
// allocation is outstanding, so a payload that survives past the barrier
// (e.g. parked in a mailbox across cycles) simply defers the reset to a
// later cycle close instead of being clobbered.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mwr::parallel {

class PayloadArena {
 public:
  /// Default chunk size: 4096 doubles (32 KiB) — hundreds of typical
  /// collective payloads per chunk before a new one is carved.
  static constexpr std::size_t kDefaultChunkDoubles = std::size_t{1} << 12;

  explicit PayloadArena(std::size_t chunk_doubles = kDefaultChunkDoubles);

  /// Carves `n` doubles (n >= 1) out of the current chunk, opening a new
  /// chunk (of at least `n` doubles) when the current one is full.  The
  /// returned storage is uninitialized and stays valid until release()d by
  /// its holder AND rewound by a later try_reset().
  [[nodiscard]] double* allocate(std::size_t n) MWR_EXCLUDES(mutex_);

  /// Declares `n` previously allocated doubles no longer referenced.
  void release(std::size_t n) noexcept;

  /// Rewinds the bump pointer to the start of the first chunk — chunks are
  /// retained for reuse — iff nothing is outstanding.  Returns whether the
  /// rewind happened.  Called by the communicator at cycle-close barriers.
  bool try_reset() MWR_EXCLUDES(mutex_);

  /// Doubles currently allocated-but-not-released (racy; diagnostics).
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return outstanding_.load(std::memory_order_acquire);
  }

  /// Chunks currently owned (high-water storage footprint).
  [[nodiscard]] std::size_t chunk_count() const MWR_EXCLUDES(mutex_);

 private:
  struct Chunk {
    std::unique_ptr<double[]> data;
    std::size_t capacity = 0;
  };

  const std::size_t chunk_doubles_;
  mutable util::Mutex mutex_;
  std::vector<Chunk> chunks_ MWR_GUARDED_BY(mutex_);
  std::size_t chunk_index_ MWR_GUARDED_BY(mutex_) = 0;
  std::size_t offset_ MWR_GUARDED_BY(mutex_) = 0;
  /// Doubles allocated and not yet released.  Incremented under mutex_ (in
  /// allocate), decremented lock-free (release runs in payload destructors
  /// on arbitrary threads); try_reset re-checks it under mutex_, where no
  /// new allocation can race the rewind.
  std::atomic<std::size_t> outstanding_{0};
};

}  // namespace mwr::parallel
