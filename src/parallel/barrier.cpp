#include "parallel/barrier.hpp"

#include <stdexcept>

namespace mwr::parallel {

CountingBarrier::CountingBarrier(std::size_t parties) : parties_(parties) {
  if (parties == 0) throw std::invalid_argument("barrier needs >= 1 party");
}

void CountingBarrier::arrive_and_wait() {
  const auto arrival = std::chrono::steady_clock::now();
  std::unique_lock lock(mutex_);
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != my_generation; });
  }
  total_wait_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - arrival)
          .count();
}

std::uint64_t CountingBarrier::generations() const {
  std::scoped_lock lock(mutex_);
  return generation_;
}

double CountingBarrier::total_wait_seconds() const {
  std::scoped_lock lock(mutex_);
  return total_wait_seconds_;
}

}  // namespace mwr::parallel
