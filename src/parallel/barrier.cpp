#include "parallel/barrier.hpp"

#include <stdexcept>

namespace mwr::parallel {

CountingBarrier::CountingBarrier(std::size_t parties) : parties_(parties) {
  if (parties == 0) throw std::invalid_argument("barrier needs >= 1 party");
}

void CountingBarrier::arrive_and_wait() { arrive_impl(nullptr); }

void CountingBarrier::arrive_and_wait(
    const std::function<void()>& on_completion) {
  arrive_impl(&on_completion);
}

void CountingBarrier::arrive_impl(
    const std::function<void()>* on_completion) {
  const auto arrival = std::chrono::steady_clock::now();
  const CoopToken* coop = coop_current();
  util::MutexLock lock(mutex_);
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    // All parties have arrived and none is released yet: the race-free
    // slot for per-generation bookkeeping.
    if (on_completion != nullptr) (*on_completion)();
    ++generation_;
    std::vector<CoopToken> waiters = std::move(fiber_waiters_);
    fiber_waiters_.clear();
    total_wait_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      arrival)
            .count();
    if (coop != nullptr) coop->scheduler->note_superstep_boundary();
    lock.unlock();
    for (const CoopToken& waiter : waiters) waiter.wake();
    cv_.notify_all();
    return;
  }
  if (coop != nullptr) {
    // Fiber party: register for the generation flip and suspend the fiber
    // instead of the worker thread.  Wakes can be spurious — re-check.
    fiber_waiters_.push_back(*coop);
    while (generation_ == my_generation) {
      lock.unlock();
      coop->scheduler->suspend_current();
      lock.lock();
    }
  } else {
    while (generation_ == my_generation) cv_.wait(mutex_);
  }
  total_wait_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - arrival)
          .count();
}

std::uint64_t CountingBarrier::generations() const {
  util::MutexLock lock(mutex_);
  return generation_;
}

double CountingBarrier::total_wait_seconds() const {
  util::MutexLock lock(mutex_);
  return total_wait_seconds_;
}

}  // namespace mwr::parallel
