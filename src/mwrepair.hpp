// Umbrella header: the whole MWRepair library through one include.
//
//   #include "mwrepair.hpp"
//
// Pulls in the MWU core (the paper's three realizations + the Exp3
// extension, regret instrumentation, checkpointing), the dataset
// generators, the APR substrate with MWRepair and campaigns, the
// baselines, the cost models, and the parallel substrate.  Individual
// module headers remain available for finer-grained includes.
#pragma once

#include "apr/campaign.hpp"           // IWYU pragma: export
#include "apr/fault_localization.hpp" // IWYU pragma: export
#include "apr/mutation.hpp"           // IWYU pragma: export
#include "apr/mutation_pool.hpp"      // IWYU pragma: export
#include "apr/mwrepair.hpp"           // IWYU pragma: export
#include "apr/program.hpp"            // IWYU pragma: export
#include "apr/test_oracle.hpp"        // IWYU pragma: export
#include "baselines/ae.hpp"           // IWYU pragma: export
#include "baselines/comparison.hpp"   // IWYU pragma: export
#include "baselines/genprog.hpp"      // IWYU pragma: export
#include "baselines/island_ga.hpp"    // IWYU pragma: export
#include "baselines/rsrepair.hpp"     // IWYU pragma: export
#include "core/distributed_mwu.hpp"   // IWYU pragma: export
#include "core/exp3_mwu.hpp"          // IWYU pragma: export
#include "core/mwu.hpp"               // IWYU pragma: export
#include "core/option_set.hpp"        // IWYU pragma: export
#include "core/parallel_driver.hpp"   // IWYU pragma: export
#include "core/regret.hpp"            // IWYU pragma: export
#include "core/serialization.hpp"     // IWYU pragma: export
#include "core/slate_mwu.hpp"         // IWYU pragma: export
#include "core/slate_projection.hpp"  // IWYU pragma: export
#include "core/standard_mwu.hpp"      // IWYU pragma: export
#include "costmodel/asymptotics.hpp"  // IWYU pragma: export
#include "costmodel/cost_model.hpp"   // IWYU pragma: export
#include "costmodel/evaluation.hpp"   // IWYU pragma: export
#include "datasets/distributions.hpp" // IWYU pragma: export
#include "datasets/scenario.hpp"      // IWYU pragma: export
#include "datasets/suite.hpp"         // IWYU pragma: export
#include "obs/metrics.hpp"            // IWYU pragma: export
#include "obs/registry.hpp"           // IWYU pragma: export
#include "obs/serialization.hpp"      // IWYU pragma: export
#include "parallel/comm.hpp"          // IWYU pragma: export
#include "parallel/thread_pool.hpp"   // IWYU pragma: export
#include "util/rng.hpp"               // IWYU pragma: export
#include "util/stats.hpp"             // IWYU pragma: export
