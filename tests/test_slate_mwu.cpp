// Unit tests for core/slate_mwu: slate sizing, the gamma exploration floor,
// update locality, and convergence against the capped maximum.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "core/slate_mwu.hpp"

namespace mwr::core {
namespace {

MwuConfig config_for(std::size_t k, double gamma = 0.05) {
  MwuConfig config;
  config.num_options = k;
  config.exploration = gamma;
  return config;
}

TEST(SlateMwu, SlateSizeTracksGammaTimesK) {
  EXPECT_EQ(SlateMwu::slate_size_for(100, 0.05), 5u);
  EXPECT_EQ(SlateMwu::slate_size_for(1000, 0.05), 50u);
  EXPECT_EQ(SlateMwu::slate_size_for(10, 0.05), 1u);   // floor at 1
  EXPECT_EQ(SlateMwu::slate_size_for(4, 1.0), 4u);     // ceiling at k
}

TEST(SlateMwu, RejectsBadConfiguration) {
  EXPECT_THROW(SlateMwu(config_for(0)), std::invalid_argument);
  EXPECT_THROW(SlateMwu(config_for(8, 0.0)), std::invalid_argument);
  EXPECT_THROW(SlateMwu(config_for(8, 1.5)), std::invalid_argument);
  auto bad_eta = config_for(8);
  bad_eta.learning_rate = 0.9;
  EXPECT_THROW(SlateMwu{bad_eta}, std::invalid_argument);
}

TEST(SlateMwu, CpusPerCycleEqualsSlateSize) {
  SlateMwu mwu(config_for(200, 0.05));
  EXPECT_EQ(mwu.slate_size(), 10u);
  EXPECT_EQ(mwu.cpus_per_cycle(), 10u);
}

TEST(SlateMwu, SampleReturnsDistinctSlate) {
  SlateMwu mwu(config_for(40, 0.1));
  util::RngStream rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto slate = mwu.sample(rng);
    ASSERT_EQ(slate.size(), 4u);
    const std::set<std::size_t> unique(slate.begin(), slate.end());
    EXPECT_EQ(unique.size(), slate.size());
  }
}

TEST(SlateMwu, ExplorationFloorsEveryProbability) {
  SlateMwu mwu(config_for(20, 0.1));
  util::RngStream rng(2);
  // Drive weights heavily toward option 0.
  for (int cycle = 0; cycle < 200; ++cycle) {
    const auto slate = mwu.sample(rng);
    std::vector<double> rewards(slate.size(), 0.0);
    for (std::size_t j = 0; j < slate.size(); ++j) {
      if (slate[j] == 0) rewards[j] = 1.0;
    }
    mwu.update(slate, rewards, rng);
  }
  const double floor = 0.1 / 20.0;
  for (const double p : mwu.probabilities()) {
    EXPECT_GE(p, floor - 1e-12);
  }
}

TEST(SlateMwu, MaxAchievableProbabilityFormula) {
  SlateMwu mwu(config_for(20, 0.1));
  EXPECT_DOUBLE_EQ(mwu.max_achievable_probability(), 0.9 + 0.1 / 20.0);
}

TEST(SlateMwu, OnlySlateMembersGainWeight) {
  SlateMwu mwu(config_for(10, 0.2));  // slate of 2
  util::RngStream rng(3);
  const std::vector<std::size_t> slate = {4, 7};
  const std::vector<double> rewards = {1.0, 0.0};
  const auto before = mwu.probabilities();
  mwu.update(slate, rewards, rng);
  const auto after = mwu.probabilities();
  EXPECT_GT(after[4], before[4]);
  // Non-rewarded and non-slate options lose relative probability equally.
  EXPECT_NEAR(after[7] / after[0], 1.0, 1e-9);
}

TEST(SlateMwu, UpdateRejectsSizeMismatch) {
  SlateMwu mwu(config_for(10, 0.2));
  util::RngStream rng(4);
  EXPECT_THROW(mwu.update(std::vector<std::size_t>{1},
                          std::vector<double>{1.0, 0.0}, rng),
               std::invalid_argument);
}

TEST(SlateMwu, ProbabilitiesFormASimplex) {
  SlateMwu mwu(config_for(30, 0.1));
  util::RngStream rng(5);
  for (int cycle = 0; cycle < 300; ++cycle) {
    const auto slate = mwu.sample(rng);
    std::vector<double> rewards(slate.size());
    for (auto& r : rewards) r = rng.bernoulli(0.4) ? 1.0 : 0.0;
    mwu.update(slate, rewards, rng);
    const auto p = mwu.probabilities();
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-9);
  }
}

TEST(SlateMwu, ConvergesOnDominantOptionEventually) {
  auto config = config_for(10, 0.2);
  config.learning_rate = 0.2;  // speed the test up
  SlateMwu mwu(config);
  util::RngStream rng(6);
  OptionSet options("easy", {0.05, 0.05, 0.05, 0.05, 0.9, 0.05, 0.05, 0.05,
                             0.05, 0.05});
  BernoulliOracle oracle(options);
  bool converged = false;
  for (int cycle = 0; cycle < 5000 && !converged; ++cycle) {
    const auto slate = mwu.sample(rng);
    std::vector<double> rewards(slate.size());
    for (std::size_t j = 0; j < slate.size(); ++j) {
      rewards[j] = oracle.sample(slate[j], rng);
    }
    mwu.update(slate, rewards, rng);
    converged = mwu.converged();
  }
  EXPECT_TRUE(converged);
  EXPECT_EQ(mwu.best_option(), 4u);
}

TEST(SlateMwu, InitResets) {
  SlateMwu mwu(config_for(10, 0.2));
  util::RngStream rng(7);
  mwu.update(std::vector<std::size_t>{0, 1}, std::vector<double>{1.0, 1.0},
             rng);
  mwu.init();
  const auto p = mwu.probabilities();
  for (const double v : p) EXPECT_NEAR(v, 0.1, 1e-12);
}

TEST(SlateMwu, KindIsSlate) {
  SlateMwu mwu(config_for(4, 0.5));
  EXPECT_EQ(mwu.kind(), MwuKind::kSlate);
}

}  // namespace
}  // namespace mwr::core
