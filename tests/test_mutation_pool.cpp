// Unit tests for apr/mutation_pool: the phase-1 precompute — yield, dedup,
// parallel validation, budget limits, and incremental revalidation.
#include <gtest/gtest.h>

#include <set>

#include "apr/mutation_pool.hpp"

namespace mwr::apr {
namespace {

datasets::ScenarioSpec toy_spec() {
  datasets::ScenarioSpec spec;
  spec.name = "toy";
  spec.statements = 2000;
  spec.tests = 15;
  spec.coverage = 0.7;
  spec.safe_rate = 0.5;
  spec.repair_rate = 0.01;
  spec.optimum = 30;
  spec.seed = 41;
  return spec;
}

TEST(MutationPool, ReachesTargetSize) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  PoolConfig config;
  config.target_size = 300;
  config.seed = 1;
  const auto pool = MutationPool::precompute(oracle, config);
  EXPECT_EQ(pool.size(), 300u);
  EXPECT_FALSE(pool.empty());
}

TEST(MutationPool, EveryMemberIsIndividuallySafe) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  PoolConfig config;
  config.target_size = 200;
  config.seed = 2;
  const auto pool = MutationPool::precompute(oracle, config);
  for (const auto& m : pool.mutations()) {
    EXPECT_TRUE(oracle.is_safe(m));
  }
}

TEST(MutationPool, MembersAreDeduplicated) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  PoolConfig config;
  config.target_size = 400;
  config.seed = 3;
  const auto pool = MutationPool::precompute(oracle, config);
  std::set<std::uint64_t> keys;
  for (const auto& m : pool.mutations()) keys.insert(m.key());
  EXPECT_EQ(keys.size(), pool.size());
}

TEST(MutationPool, AttemptsReflectTheYieldRate) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  PoolConfig config;
  config.target_size = 500;
  config.seed = 4;
  const auto pool = MutationPool::precompute(oracle, config);
  // With safe_rate 0.5 the precompute should need roughly 2x candidates.
  EXPECT_GE(pool.attempts(), pool.size());
  EXPECT_LE(pool.attempts(), 4 * pool.size());
  // Every attempt ran the suite once.
  EXPECT_EQ(oracle.suite_runs(), pool.attempts());
}

TEST(MutationPool, RespectsAttemptBudget) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  PoolConfig config;
  config.target_size = 100000;  // unreachable
  config.max_attempts = 500;
  config.seed = 5;
  const auto pool = MutationPool::precompute(oracle, config);
  EXPECT_LE(pool.attempts(), 500u);
  EXPECT_LT(pool.size(), 100000u);
  EXPECT_GT(pool.size(), 0u);
}

TEST(MutationPool, DeterministicPerSeed) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle_a(program);
  const TestOracle oracle_b(program);
  PoolConfig config;
  config.target_size = 150;
  config.seed = 6;
  const auto a = MutationPool::precompute(oracle_a, config);
  const auto b = MutationPool::precompute(oracle_b, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.mutations()[i].key(), b.mutations()[i].key());
  }
}

TEST(MutationPool, ThreadCountDoesNotChangeTheResult) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle_a(program);
  const TestOracle oracle_b(program);
  PoolConfig config;
  config.target_size = 150;
  config.seed = 7;
  config.threads = 1;
  const auto a = MutationPool::precompute(oracle_a, config);
  config.threads = 8;
  const auto b = MutationPool::precompute(oracle_b, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.mutations()[i].key(), b.mutations()[i].key());
  }
}

TEST(MutationPool, RevalidateAgainstSameOracleDropsNothing) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  PoolConfig config;
  config.target_size = 200;
  config.seed = 8;
  auto pool = MutationPool::precompute(oracle, config);
  EXPECT_EQ(pool.revalidate(oracle), 0u);
  EXPECT_EQ(pool.size(), 200u);
}

TEST(MutationPool, RevalidateDropsMembersUnderAGrownSuite) {
  // The incremental-update path of §III-C: a new test exposes some
  // previously-safe mutations.
  auto spec = toy_spec();
  const ProgramModel program(spec);
  const TestOracle oracle(program);
  PoolConfig config;
  config.target_size = 300;
  config.seed = 9;
  auto pool = MutationPool::precompute(oracle, config);

  auto grown = spec;
  grown.tests = spec.tests + 5;  // five new regression tests
  const ProgramModel grown_program(grown);
  const TestOracle grown_oracle(grown_program);
  const std::size_t dropped = pool.revalidate(grown_oracle);
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(pool.size(), 300u - dropped);
  for (const auto& m : pool.mutations()) {
    const Patch single{m};
    const auto e = grown_oracle.evaluate(single);
    EXPECT_EQ(e.required_passed, e.required_total);
  }
}

}  // namespace
}  // namespace mwr::apr
