// Unit tests for apr/program: the stable hash, coverage structure, and
// construction contracts.
#include <gtest/gtest.h>

#include "apr/program.hpp"

namespace mwr::apr {
namespace {

datasets::ScenarioSpec small_spec() {
  datasets::ScenarioSpec spec;
  spec.name = "toy";
  spec.statements = 1000;
  spec.coverage = 0.6;
  spec.seed = 99;
  return spec;
}

TEST(StableHash, DeterministicAndSensitiveToEveryPart) {
  EXPECT_EQ(stable_hash(1, 2, 3, 4), stable_hash(1, 2, 3, 4));
  EXPECT_NE(stable_hash(1, 2, 3, 4), stable_hash(2, 2, 3, 4));
  EXPECT_NE(stable_hash(1, 2, 3, 4), stable_hash(1, 3, 3, 4));
  EXPECT_NE(stable_hash(1, 2, 3, 4), stable_hash(1, 2, 4, 4));
  EXPECT_NE(stable_hash(1, 2, 3, 4), stable_hash(1, 2, 3, 5));
}

TEST(StableHash, UnitMappingInRange) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = hash_to_unit(stable_hash(7, i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(StableHash, UnitMappingIsRoughlyUniform) {
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += hash_to_unit(stable_hash(11, static_cast<std::uint64_t>(i)));
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(ProgramModel, RejectsDegenerateSpecs) {
  auto spec = small_spec();
  spec.statements = 0;
  EXPECT_THROW(ProgramModel{spec}, std::invalid_argument);
  spec = small_spec();
  spec.coverage = 0.0;
  EXPECT_THROW(ProgramModel{spec}, std::invalid_argument);
  spec.coverage = 1.5;
  EXPECT_THROW(ProgramModel{spec}, std::invalid_argument);
}

TEST(ProgramModel, CoverageFractionIsRespected) {
  const ProgramModel program(small_spec());
  const double fraction = static_cast<double>(
                              program.covered_statements().size()) /
                          static_cast<double>(program.num_statements());
  EXPECT_NEAR(fraction, 0.6, 0.05);
}

TEST(ProgramModel, CoveredListMatchesPredicate) {
  const ProgramModel program(small_spec());
  std::size_t covered = 0;
  for (std::size_t s = 0; s < program.num_statements(); ++s) {
    if (program.is_covered(s)) ++covered;
  }
  EXPECT_EQ(covered, program.covered_statements().size());
  for (const auto s : program.covered_statements()) {
    EXPECT_TRUE(program.is_covered(s));
  }
}

TEST(ProgramModel, CoverageIsDeterministicPerSeed) {
  const ProgramModel a(small_spec());
  const ProgramModel b(small_spec());
  EXPECT_EQ(a.covered_statements(), b.covered_statements());
  auto other = small_spec();
  other.seed = 100;
  const ProgramModel c(other);
  EXPECT_NE(a.covered_statements(), c.covered_statements());
}

TEST(ProgramModel, CoveredStatementsAreSortedUnique) {
  const ProgramModel program(small_spec());
  const auto& covered = program.covered_statements();
  for (std::size_t i = 1; i < covered.size(); ++i) {
    EXPECT_LT(covered[i - 1], covered[i]);
  }
}

}  // namespace
}  // namespace mwr::apr
