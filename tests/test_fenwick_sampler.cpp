// util::FenwickSampler — exact prefix-sum semantics against the linear
// reference scan, edge cases, point updates, and distributional agreement
// with RngStream::weighted_choice.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/fenwick_sampler.hpp"
#include "util/rng.hpp"

namespace mwr::util {
namespace {

// Large enough to clear kLinearCutoff so the binary descent (not the
// small-k linear fallback) is what these tests exercise.
std::vector<double> integer_weights(std::size_t k, std::uint64_t seed) {
  RngStream rng(seed);
  std::vector<double> w(k);
  for (auto& v : w) v = static_cast<double>(rng.uniform_index(10));
  // Ensure a positive total.
  w[k / 2] = std::max(w[k / 2], 1.0);
  return w;
}

// Reference: smallest index whose inclusive prefix sum exceeds target.
std::size_t linear_find(const std::vector<double>& w, double target) {
  double run = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    run += w[i];
    if (target < run) return i;
  }
  return w.size();
}

TEST(FenwickSampler, PrefixSumsMatchSequentialAccumulation) {
  const auto w = integer_weights(300, 7);
  const FenwickSampler sampler(w);
  double run = 0.0;
  for (std::size_t count = 0; count <= w.size(); ++count) {
    EXPECT_DOUBLE_EQ(sampler.prefix_sum(count), run) << "count=" << count;
    if (count < w.size()) run += w[count];
  }
  EXPECT_DOUBLE_EQ(sampler.total(), run);
}

TEST(FenwickSampler, FindMatchesLinearScanExactlyOnIntegerWeights) {
  // Integer-valued weights make every partial sum exactly representable,
  // so the tree's block sums and the sequential scan agree bit-for-bit —
  // including exactly on bucket boundaries.
  const auto w = integer_weights(517, 11);  // non-power-of-two size
  const FenwickSampler sampler(w);
  RngStream rng(3);
  for (int trial = 0; trial < 20000; ++trial) {
    const double target = rng.uniform() * sampler.total();
    EXPECT_EQ(sampler.find(target), linear_find(w, target));
  }
  // Boundary targets: exact prefix sums must select the *next* bucket.
  double run = 0.0;
  for (std::size_t i = 0; i < w.size() && run < sampler.total(); ++i) {
    EXPECT_EQ(sampler.find(run), linear_find(w, run));
    run += w[i];
  }
}

TEST(FenwickSampler, SampleMatchesWeightedChoiceDrawForDraw) {
  // Same uniform stream in, same index sequence out (integer weights, so
  // the association difference cannot surface).
  const auto w = integer_weights(400, 13);
  const FenwickSampler sampler(w);
  RngStream a(99);
  RngStream b(99);
  for (int trial = 0; trial < 20000; ++trial) {
    EXPECT_EQ(sampler.sample(a), b.weighted_choice(w));
  }
}

TEST(FenwickSampler, SmallSizesUseTheLinearPathBitIdentically) {
  // Below kLinearCutoff sample() *is* the sequential scan — identical for
  // arbitrary (non-integer) weights too.
  RngStream init(5);
  std::vector<double> w(FenwickSampler::kLinearCutoff);
  for (auto& v : w) v = init.uniform();
  const FenwickSampler sampler(w);
  RngStream a(42);
  RngStream b(42);
  for (int trial = 0; trial < 20000; ++trial) {
    EXPECT_EQ(sampler.sample(a), b.weighted_choice(w));
  }
}

TEST(FenwickSampler, ZeroTotalReturnsSize) {
  const std::vector<double> w(200, 0.0);
  const FenwickSampler sampler(w);
  RngStream rng(1);
  EXPECT_EQ(sampler.sample(rng), w.size());
  EXPECT_DOUBLE_EQ(sampler.total(), 0.0);
}

TEST(FenwickSampler, EmptyIsZeroTotal) {
  const FenwickSampler sampler;
  RngStream rng(1);
  EXPECT_TRUE(sampler.empty());
  EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(FenwickSampler, SinglePositiveWeightAlwaysWins) {
  for (const std::size_t hot : {std::size_t{0}, std::size_t{123},
                                std::size_t{499}}) {
    std::vector<double> w(500, 0.0);
    w[hot] = 2.5;
    const FenwickSampler sampler(w);
    RngStream rng(hot + 1);
    for (int trial = 0; trial < 1000; ++trial) {
      EXPECT_EQ(sampler.sample(rng), hot);
    }
  }
}

TEST(FenwickSampler, PointUpdateMatchesRebuildFromScratch) {
  // Renormalize-style updates (every weight touched) through update()
  // must leave the tree equivalent to a fresh build of the new vector.
  auto w = integer_weights(260, 17);
  FenwickSampler incremental(w);
  RngStream mutate(23);
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] = static_cast<double>(mutate.uniform_index(7));
      incremental.update(i, w[i]);
    }
    w[0] = std::max(w[0], 1.0);
    incremental.update(0, w[0]);
    const FenwickSampler rebuilt(w);
    for (std::size_t count = 0; count <= w.size(); ++count) {
      EXPECT_DOUBLE_EQ(incremental.prefix_sum(count),
                       rebuilt.prefix_sum(count));
    }
    RngStream a(round);
    RngStream b(round);
    for (int trial = 0; trial < 2000; ++trial) {
      EXPECT_EQ(incremental.sample(a), rebuilt.sample(b));
    }
  }
}

TEST(FenwickSampler, ChiSquaredAgreementWithWeightedChoice) {
  // General (non-integer) weights: the Fenwick draw must reproduce the
  // weighted distribution.  k=64 cells, 10^5 draws; the 99.9th percentile
  // of chi-squared with 63 degrees of freedom is ~106.
  constexpr std::size_t kCells = 64;
  constexpr int kDraws = 100000;
  RngStream init(31);
  std::vector<double> w(kCells);
  double total = 0.0;
  for (auto& v : w) total += (v = 0.1 + init.uniform());

  // Use a padded vector so the tree path (not the small-k fallback) is
  // exercised: cells beyond kCells get zero weight.
  std::vector<double> padded(FenwickSampler::kLinearCutoff * 2, 0.0);
  for (std::size_t i = 0; i < kCells; ++i) padded[i] = w[i];
  const FenwickSampler sampler(padded);

  std::vector<int> observed(kCells, 0);
  RngStream rng(77);
  for (int d = 0; d < kDraws; ++d) {
    const std::size_t i = sampler.sample(rng);
    ASSERT_LT(i, kCells);
    ++observed[i];
  }
  double chi2 = 0.0;
  for (std::size_t i = 0; i < kCells; ++i) {
    const double expected = static_cast<double>(kDraws) * w[i] / total;
    const double diff = observed[i] - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 106.0);
}

TEST(FenwickSampler, UpdateAdjustsTotalIncrementally) {
  auto w = integer_weights(200, 41);
  FenwickSampler sampler(w);
  const double before = sampler.total();
  sampler.update(5, w[5] + 3.0);
  EXPECT_DOUBLE_EQ(sampler.total(), before + 3.0);
  EXPECT_DOUBLE_EQ(sampler.weight(5), w[5] + 3.0);
}

}  // namespace
}  // namespace mwr::util
