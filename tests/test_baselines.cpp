// Unit tests for the baselines: GenProg's genetic policy, RSRepair's random
// search, and AE's pruned deterministic enumeration.
#include <gtest/gtest.h>

#include "baselines/ae.hpp"
#include "baselines/genprog.hpp"
#include "baselines/rsrepair.hpp"

namespace mwr::baselines {
namespace {

datasets::ScenarioSpec easy_spec() {
  datasets::ScenarioSpec spec;
  spec.name = "easy";
  spec.statements = 2000;
  spec.tests = 15;
  spec.coverage = 0.7;
  spec.safe_rate = 0.5;
  spec.repair_rate = 0.05;  // dense repairs: all tools should succeed
  spec.optimum = 30;
  spec.min_repair_edits = 1;
  spec.seed = 61;
  return spec;
}

datasets::ScenarioSpec multi_edit_spec() {
  auto spec = easy_spec();
  spec.name = "multi";
  spec.min_repair_edits = 2;
  spec.repair_rate = 0.01;
  spec.seed = 62;
  return spec;
}

TEST(GenProg, RepairsADenseScenario) {
  const apr::ProgramModel program(easy_spec());
  const apr::TestOracle oracle(program);
  GenProgConfig config;
  config.seed = 1;
  const auto outcome = run_genprog(oracle, config);
  ASSERT_TRUE(outcome.repaired);
  EXPECT_TRUE(oracle.evaluate(outcome.patch).is_repair());
  EXPECT_GT(outcome.suite_runs, 0u);
  EXPECT_DOUBLE_EQ(outcome.latency_units,
                   static_cast<double>(outcome.suite_runs));
}

TEST(GenProg, RespectsTheSuiteRunBudget) {
  auto spec = easy_spec();
  spec.min_repair_edits = 100000;  // unrepairable
  const apr::ProgramModel program(spec);
  const apr::TestOracle oracle(program);
  GenProgConfig config;
  config.max_suite_runs = 777;
  config.seed = 2;
  const auto outcome = run_genprog(oracle, config);
  EXPECT_FALSE(outcome.repaired);
  EXPECT_LE(outcome.suite_runs, 777u + config.population);
}

TEST(GenProg, DeterministicPerSeed) {
  const apr::ProgramModel program(easy_spec());
  const apr::TestOracle oracle_a(program);
  const apr::TestOracle oracle_b(program);
  GenProgConfig config;
  config.seed = 3;
  const auto a = run_genprog(oracle_a, config);
  const auto b = run_genprog(oracle_b, config);
  EXPECT_EQ(a.repaired, b.repaired);
  EXPECT_EQ(a.suite_runs, b.suite_runs);
}

TEST(RsRepair, RepairsADenseScenario) {
  const apr::ProgramModel program(easy_spec());
  const apr::TestOracle oracle(program);
  RsRepairConfig config;
  config.seed = 4;
  const auto outcome = run_rsrepair(oracle, config);
  ASSERT_TRUE(outcome.repaired);
  EXPECT_TRUE(oracle.evaluate(outcome.patch).is_repair());
  EXPECT_LE(outcome.patch.size(), 2u);  // one- or two-edit trials only
}

TEST(RsRepair, ExhaustsBudgetOnUnrepairableScenario) {
  auto spec = easy_spec();
  spec.min_repair_edits = 100000;
  const apr::ProgramModel program(spec);
  const apr::TestOracle oracle(program);
  RsRepairConfig config;
  config.max_suite_runs = 300;
  config.seed = 5;
  const auto outcome = run_rsrepair(oracle, config);
  EXPECT_FALSE(outcome.repaired);
  EXPECT_EQ(outcome.suite_runs, 300u);
}

TEST(Ae, RepairsADenseScenario) {
  const apr::ProgramModel program(easy_spec());
  const apr::TestOracle oracle(program);
  AeConfig config;
  const auto outcome = run_ae(oracle, config);
  ASSERT_TRUE(outcome.repaired);
  EXPECT_EQ(outcome.patch.size(), 1u);  // single-edit by construction
  EXPECT_TRUE(oracle.evaluate(outcome.patch).is_repair());
}

TEST(Ae, CannotRepairMultiEditDefects) {
  const apr::ProgramModel program(multi_edit_spec());
  const apr::TestOracle oracle(program);
  AeConfig config;
  config.max_suite_runs = 5000;
  const auto outcome = run_ae(oracle, config);
  EXPECT_FALSE(outcome.repaired);
}

TEST(Ae, PrunesEquivalentCandidates) {
  auto spec = easy_spec();
  spec.min_repair_edits = 100000;  // run the full enumeration window
  const apr::ProgramModel program(spec);
  const apr::TestOracle oracle(program);
  AeConfig config;
  config.max_suite_runs = 2000;
  const auto outcome = run_ae(oracle, config);
  EXPECT_GT(outcome.pruned, 0u);
  EXPECT_EQ(outcome.enumerated, outcome.pruned + outcome.suite_runs);
}

TEST(Ae, IsDeterministic) {
  const apr::ProgramModel program(easy_spec());
  const apr::TestOracle oracle_a(program);
  const apr::TestOracle oracle_b(program);
  AeConfig config;
  const auto a = run_ae(oracle_a, config);
  const auto b = run_ae(oracle_b, config);
  EXPECT_EQ(a.repaired, b.repaired);
  EXPECT_EQ(a.suite_runs, b.suite_runs);
  EXPECT_EQ(a.enumerated, b.enumerated);
}

TEST(GenProg, CanAssembleMultiEditRepairs) {
  // The evolutionary policy can stack edits across generations; random
  // single/double-edit search and AE cannot reach this defect at all.
  const apr::ProgramModel program(multi_edit_spec());
  const apr::TestOracle oracle(program);
  GenProgConfig config;
  config.max_suite_runs = 30000;
  config.max_generations = 800;
  config.seed = 6;
  const auto outcome = run_genprog(oracle, config);
  if (outcome.repaired) {
    EXPECT_GE(outcome.patch.size(), 2u);
    EXPECT_TRUE(oracle.evaluate(outcome.patch).is_repair());
  }
  // Repair is stochastic; the structural claim (>= 2 edits when repaired)
  // is what the encoding guarantees.
}

}  // namespace
}  // namespace mwr::baselines
