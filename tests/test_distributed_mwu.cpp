// Unit tests for core/distributed_mwu: population sizing, the adopt rules
// (alpha/beta/mu), the implicit weight vector, and plurality convergence.
#include <gtest/gtest.h>

#include <numeric>

#include "core/distributed_mwu.hpp"

namespace mwr::core {
namespace {

MwuConfig config_for(std::size_t k) {
  MwuConfig config;
  config.num_options = k;
  return config;
}

TEST(DistributedPopulation, GrowsSuperLinearly) {
  const auto pop = [](std::size_t k) {
    return distributed_population(config_for(k));
  };
  EXPECT_GT(pop(256), 4 * pop(64));  // exponent 1.3 > 1
  EXPECT_GE(pop(4), 4u);             // never below k
}

TEST(DistributedPopulation, IntractableAtPaperSizes) {
  // The paper's two "—" cells: size 16384 exceeds any tractable population.
  EXPECT_GT(distributed_population(config_for(16384)),
            config_for(16384).max_population);
  EXPECT_LE(distributed_population(config_for(4096)),
            config_for(4096).max_population);
}

TEST(DistributedMwu, RejectsBadConfiguration) {
  EXPECT_THROW(DistributedMwu(config_for(0)), std::invalid_argument);
  auto bad = config_for(8);
  bad.exploration = 1.5;
  EXPECT_THROW(DistributedMwu{bad}, std::invalid_argument);
  bad = config_for(8);
  bad.adopt_failure = 0.9;  // alpha > beta
  bad.adopt_success = 0.5;
  EXPECT_THROW(DistributedMwu{bad}, std::invalid_argument);
  bad = config_for(16384);
  EXPECT_THROW(DistributedMwu{bad}, std::length_error);
}

TEST(DistributedMwu, InitializationIsRoundRobin) {
  DistributedMwu mwu(config_for(8));
  const auto p = mwu.probabilities();
  ASSERT_EQ(p.size(), 8u);
  for (const double v : p) EXPECT_NEAR(v, 0.125, 0.01);
  for (std::size_t j = 0; j < mwu.choices().size(); ++j) {
    EXPECT_EQ(mwu.choices()[j], j % 8);
  }
}

TEST(DistributedMwu, CpusPerCycleIsThePopulation) {
  DistributedMwu mwu(config_for(16));
  EXPECT_EQ(mwu.cpus_per_cycle(), mwu.population());
  EXPECT_EQ(mwu.population(), distributed_population(config_for(16)));
}

TEST(DistributedMwu, SampleObservesPopulationOrRandom) {
  DistributedMwu mwu(config_for(8));
  util::RngStream rng(1);
  const auto observed = mwu.sample(rng);
  EXPECT_EQ(observed.size(), mwu.population());
  for (const auto o : observed) EXPECT_LT(o, 8u);
}

TEST(DistributedMwu, SuccessfulObservationsAreAdopted) {
  auto config = config_for(4);
  config.adopt_success = 1.0;  // always adopt successes
  config.adopt_failure = 0.0;  // never adopt failures
  DistributedMwu mwu(config);
  util::RngStream rng(2);
  // Everyone observes option 2 and it always succeeds.
  const std::vector<std::size_t> observed(mwu.population(), 2);
  const std::vector<double> rewards(mwu.population(), 1.0);
  mwu.update(observed, rewards, rng);
  EXPECT_DOUBLE_EQ(mwu.probabilities()[2], 1.0);
  EXPECT_TRUE(mwu.converged());
  EXPECT_EQ(mwu.best_option(), 2u);
}

TEST(DistributedMwu, FailedObservationsAreRarelyAdopted) {
  auto config = config_for(4);
  config.adopt_failure = 0.0;
  DistributedMwu mwu(config);
  util::RngStream rng(3);
  const std::vector<std::size_t> observed(mwu.population(), 2);
  const std::vector<double> rewards(mwu.population(), 0.0);  // all fail
  const auto before = mwu.probabilities();
  mwu.update(observed, rewards, rng);
  EXPECT_EQ(mwu.probabilities(), before);
}

TEST(DistributedMwu, UpdateRejectsSizeMismatch) {
  DistributedMwu mwu(config_for(4));
  util::RngStream rng(4);
  EXPECT_THROW(mwu.update(std::vector<std::size_t>{1},
                          std::vector<double>{1.0}, rng),
               std::invalid_argument);
}

TEST(DistributedMwu, PopularityIsConsistentWithChoices) {
  DistributedMwu mwu(config_for(8));
  util::RngStream rng(5);
  for (int cycle = 0; cycle < 50; ++cycle) {
    const auto observed = mwu.sample(rng);
    std::vector<double> rewards(observed.size());
    for (auto& r : rewards) r = rng.bernoulli(0.5) ? 1.0 : 0.0;
    mwu.update(observed, rewards, rng);
  }
  std::vector<std::size_t> counts(8, 0);
  for (const auto c : mwu.choices()) ++counts[c];
  const auto p = mwu.probabilities();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(p[i],
                static_cast<double>(counts[i]) /
                    static_cast<double>(mwu.population()),
                1e-12);
  }
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-9);
}

TEST(DistributedMwu, ConvergesToPluralityOnDominantOption) {
  DistributedMwu mwu(config_for(8));
  util::RngStream rng(6);
  OptionSet options("easy", {0.1, 0.1, 0.1, 0.1, 0.1, 0.95, 0.1, 0.1});
  BernoulliOracle oracle(options);
  bool converged = false;
  for (int cycle = 0; cycle < 500 && !converged; ++cycle) {
    const auto observed = mwu.sample(rng);
    std::vector<double> rewards(observed.size());
    for (std::size_t j = 0; j < observed.size(); ++j) {
      rewards[j] = oracle.sample(observed[j], rng);
    }
    mwu.update(observed, rewards, rng);
    converged = mwu.converged();
  }
  EXPECT_TRUE(converged);
  EXPECT_EQ(mwu.best_option(), 5u);
}

TEST(DistributedMwu, InitRestoresRoundRobin) {
  DistributedMwu mwu(config_for(4));
  util::RngStream rng(7);
  const std::vector<std::size_t> observed(mwu.population(), 0);
  const std::vector<double> rewards(mwu.population(), 1.0);
  mwu.update(observed, rewards, rng);
  mwu.init();
  // The population is not an exact multiple of k; round-robin leaves the
  // shares within one agent of uniform.
  for (const double p : mwu.probabilities()) EXPECT_NEAR(p, 0.25, 0.05);
}

TEST(DistributedMwu, ExplorationKeepsDiversity) {
  // With mu > 0, even a fully-converged population keeps sampling random
  // options — the memoryless escape hatch of the social-learning model.
  auto config = config_for(16);
  config.exploration = 0.5;
  DistributedMwu mwu(config);
  util::RngStream rng(8);
  // Converge everyone onto option 0 first.
  std::vector<std::size_t> observed(mwu.population(), 0);
  std::vector<double> rewards(mwu.population(), 1.0);
  auto forced = config;
  (void)forced;
  mwu.update(observed, rewards, rng);
  // Now sample: about half the observations should be uniform-random.
  const auto next = mwu.sample(rng);
  std::size_t non_plurality = 0;
  for (const auto o : next) {
    if (o != mwu.best_option()) ++non_plurality;
  }
  EXPECT_GT(non_plurality, next.size() / 4);
}

TEST(DistributedMwu, KindIsDistributed) {
  DistributedMwu mwu(config_for(4));
  EXPECT_EQ(mwu.kind(), MwuKind::kDistributed);
}

}  // namespace
}  // namespace mwr::core
