// Scenario-wide property sweeps: every named C/Java scenario's simulated
// oracle must match its own calibration — the statistical contracts the
// figure and table reproductions rest on.
#include <gtest/gtest.h>

#include "apr/mutation_pool.hpp"
#include "apr/test_oracle.hpp"
#include "datasets/scenario.hpp"

namespace mwr::apr {
namespace {

class ScenarioOracleSweep
    : public ::testing::TestWithParam<datasets::ScenarioSpec> {};

TEST_P(ScenarioOracleSweep, SingleMutationSafeRateMatchesSpec) {
  const auto& spec = GetParam();
  const ProgramModel program(spec);
  const TestOracle oracle(program);
  util::RngStream rng(1);
  int safe = 0;
  constexpr int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    safe += oracle.is_safe(random_mutation(program, rng)) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(safe) / kSamples, spec.safe_rate, 0.04)
      << spec.name;
}

TEST_P(ScenarioOracleSweep, CombinedPassRateTracksTheCalibratedModel) {
  const auto& spec = GetParam();
  const ProgramModel program(spec);
  const TestOracle oracle(program);
  PoolConfig pool_config;
  pool_config.target_size = 600;
  pool_config.seed = 2;
  const auto pool = MutationPool::precompute(oracle, pool_config);
  util::RngStream rng(3);
  const std::size_t x = std::max<std::size_t>(4, spec.optimum / 2);
  constexpr int kTrials = 400;
  int passed = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto patch = sample_from_pool(pool.mutations(), x, rng);
    const auto e = oracle.evaluate(patch);
    if (e.required_passed == e.required_total) ++passed;
  }
  const double expected = datasets::pass_probability(
      static_cast<double>(x), spec.interference());
  EXPECT_NEAR(static_cast<double>(passed) / kTrials, expected, 0.08)
      << spec.name << " at x=" << x;
}

TEST_P(ScenarioOracleSweep, RelevanceRateAmongSafeMatchesRepairRate) {
  const auto& spec = GetParam();
  const ProgramModel program(spec);
  const TestOracle oracle(program);
  util::RngStream rng(4);
  std::size_t safe = 0;
  std::size_t relevant = 0;
  for (int i = 0; i < 60000; ++i) {
    const Mutation m = random_mutation(program, rng);
    if (!oracle.is_safe(m)) continue;
    ++safe;
    if (oracle.is_repair_relevant(m)) ++relevant;
  }
  ASSERT_GT(safe, 10000u);
  const double rate = static_cast<double>(relevant) / static_cast<double>(safe);
  // Wide tolerance: very sparse scenarios have few relevant draws.
  EXPECT_NEAR(rate, spec.repair_rate,
              0.5 * spec.repair_rate + 3.0 / static_cast<double>(safe))
      << spec.name;
}

TEST_P(ScenarioOracleSweep, OptionSetPeakSitsNearTheCalibratedOptimum) {
  const auto& spec = GetParam();
  const auto options = spec.option_set();
  const auto best_count = spec.count_for_option(options.best_option());
  EXPECT_NEAR(static_cast<double>(best_count),
              static_cast<double>(spec.optimum),
              0.4 * static_cast<double>(spec.optimum) + 6.0)
      << spec.name;
}

TEST_P(ScenarioOracleSweep, BaselineFitnessIsSuiteSize) {
  const auto& spec = GetParam();
  const ProgramModel program(spec);
  const TestOracle oracle(program);
  EXPECT_EQ(oracle.baseline_fitness(), spec.tests);
  const auto empty = oracle.evaluate({});
  EXPECT_TRUE(!empty.is_repair());
}

std::vector<datasets::ScenarioSpec> all_scenarios() {
  auto specs = datasets::c_scenarios();
  const auto java = datasets::java_scenarios();
  specs.insert(specs.end(), java.begin(), java.end());
  return specs;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioOracleSweep,
                         ::testing::ValuesIn(all_scenarios()),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (auto& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace mwr::apr
