// Unit tests for costmodel/asymptotics: Table I's symbolic cells and their
// numeric evaluation.
#include <gtest/gtest.h>

#include <cmath>

#include "costmodel/asymptotics.hpp"

namespace mwr::costmodel {
namespace {

using core::MwuKind;

TEST(Symbolic, MatchesTableOne) {
  EXPECT_EQ(symbolic(MwuKind::kStandard, Property::kCommunication), "O(n)");
  EXPECT_EQ(symbolic(MwuKind::kSlate, Property::kCommunication), "O(n)");
  EXPECT_EQ(symbolic(MwuKind::kDistributed, Property::kCommunication),
            "O(ln n / ln ln n)*");
  EXPECT_EQ(symbolic(MwuKind::kStandard, Property::kMemory), "O(k)");
  EXPECT_EQ(symbolic(MwuKind::kDistributed, Property::kMemory), "O(1)");
  EXPECT_EQ(symbolic(MwuKind::kStandard, Property::kConvergence),
            "O(ln k / eps^2)");
  EXPECT_EQ(symbolic(MwuKind::kSlate, Property::kConvergence),
            "O(k ln k / eps^2)");
  EXPECT_EQ(symbolic(MwuKind::kDistributed, Property::kConvergence),
            "O(ln k / delta)");
  EXPECT_EQ(symbolic(MwuKind::kDistributed, Property::kMinAgents),
            "O(k^(1/delta))*");
}

TEST(Symbolic, HighProbabilityStarsOnlyDistributedCommAndAgents) {
  EXPECT_TRUE(high_probability(MwuKind::kDistributed,
                               Property::kCommunication));
  EXPECT_TRUE(high_probability(MwuKind::kDistributed, Property::kMinAgents));
  EXPECT_FALSE(high_probability(MwuKind::kDistributed, Property::kMemory));
  EXPECT_FALSE(high_probability(MwuKind::kStandard,
                                Property::kCommunication));
}

TEST(PropertyNames, MatchTableRows) {
  EXPECT_EQ(to_string(Property::kCommunication), "Communication Cost");
  EXPECT_EQ(to_string(Property::kMemory), "Memory Overhead");
  EXPECT_EQ(to_string(Property::kConvergence), "Convergence Time");
  EXPECT_EQ(to_string(Property::kMinAgents), "Minimum Agents");
}

TEST(DeltaOf, MatchesDefinition) {
  EXPECT_NEAR(delta_of(0.75), std::log(3.0), 1e-12);
  EXPECT_THROW((void)delta_of(0.5), std::invalid_argument);
  EXPECT_THROW((void)delta_of(1.0), std::invalid_argument);
  EXPECT_THROW((void)delta_of(0.0), std::invalid_argument);
}

TEST(Evaluate, CommunicationValues) {
  OperatingPoint point;
  point.agents = 64;
  EXPECT_DOUBLE_EQ(evaluate(MwuKind::kStandard, Property::kCommunication,
                            point),
                   64.0);
  EXPECT_LT(evaluate(MwuKind::kDistributed, Property::kCommunication, point),
            5.0);
}

TEST(Evaluate, MemoryValues) {
  OperatingPoint point;
  point.options = 500;
  EXPECT_DOUBLE_EQ(evaluate(MwuKind::kSlate, Property::kMemory, point), 500.0);
  EXPECT_DOUBLE_EQ(evaluate(MwuKind::kDistributed, Property::kMemory, point),
                   1.0);
}

TEST(Evaluate, ConvergenceOrdering) {
  OperatingPoint point;
  point.options = 1000;
  const double standard =
      evaluate(MwuKind::kStandard, Property::kConvergence, point);
  const double slate =
      evaluate(MwuKind::kSlate, Property::kConvergence, point);
  const double distributed =
      evaluate(MwuKind::kDistributed, Property::kConvergence, point);
  // Slate pays the extra factor of k; Distributed's delta beats eps^2.
  EXPECT_GT(slate, standard);
  EXPECT_LT(distributed, standard);
  EXPECT_NEAR(standard, std::log(1000.0) / 0.0025, 1e-6);
}

TEST(Evaluate, MinAgentsGrowsWithKOnlyForDistributed) {
  OperatingPoint small;
  small.options = 100;
  OperatingPoint large;
  large.options = 10000;
  EXPECT_EQ(evaluate(MwuKind::kStandard, Property::kMinAgents, small),
            evaluate(MwuKind::kStandard, Property::kMinAgents, large));
  EXPECT_LT(evaluate(MwuKind::kDistributed, Property::kMinAgents, small),
            evaluate(MwuKind::kDistributed, Property::kMinAgents, large));
}

}  // namespace
}  // namespace mwr::costmodel
