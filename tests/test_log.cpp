// Unit tests for util/log: threshold filtering and concurrent writes.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/log.hpp"

namespace mwr::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LogTest, BelowThresholdIsDropped) {
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  log_line(LogLevel::kInfo, "component", "should not appear");
  log_line(LogLevel::kError, "component", "should appear");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_NE(err.find("should appear"), std::string::npos);
}

TEST_F(LogTest, LineFormatIncludesLevelAndComponent) {
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  log_line(LogLevel::kWarn, "pool", "message body");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("WARN pool: message body"), std::string::npos);
}

TEST_F(LogTest, StreamMacroBuildsMessage) {
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  MWR_LOG(kInfo, "test") << "value=" << 42;
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("INFO test: value=42"), std::string::npos);
}

TEST_F(LogTest, ConcurrentWritersDoNotInterleaveWithinLines) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        log_line(LogLevel::kInfo, "writer", "aaaaaaaaaa");
      }
    });
  }
  for (auto& w : writers) w.join();
  const std::string err = ::testing::internal::GetCapturedStderr();
  // 200 complete lines, each ending with the full message.
  std::size_t lines = 0;
  std::size_t pos = 0;
  while ((pos = err.find("aaaaaaaaaa\n", pos)) != std::string::npos) {
    ++lines;
    pos += 1;
  }
  EXPECT_EQ(lines, 200u);
}

}  // namespace
}  // namespace mwr::util
