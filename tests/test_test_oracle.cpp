// Unit tests for apr/test_oracle: the simulated test-suite semantics —
// safety determinism, breakage, pairwise interference rates, repair
// conditions, and cost accounting.
#include <gtest/gtest.h>

#include <thread>

#include "apr/mutation_pool.hpp"
#include "apr/test_oracle.hpp"

namespace mwr::apr {
namespace {

datasets::ScenarioSpec toy_spec() {
  datasets::ScenarioSpec spec;
  spec.name = "toy";
  spec.statements = 2000;
  spec.tests = 20;
  spec.coverage = 0.7;
  spec.safe_rate = 0.5;
  spec.repair_rate = 0.05;
  spec.optimum = 30;
  spec.min_repair_edits = 1;
  spec.seed = 31;
  return spec;
}

TEST(TestOracle, RejectsTooManyTests) {
  auto spec = toy_spec();
  spec.tests = 65;  // bitmask model caps at 64
  const ProgramModel program(spec);
  EXPECT_THROW(TestOracle{program}, std::invalid_argument);
  spec.tests = 0;
  const ProgramModel program2(spec);
  EXPECT_THROW(TestOracle{program2}, std::invalid_argument);
}

TEST(TestOracle, BaselinePassesAllRequiredTestsButNotBug) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  const Evaluation e = oracle.evaluate({});
  EXPECT_EQ(e.required_passed, e.required_total);
  EXPECT_FALSE(e.bug_test_passed);
  EXPECT_FALSE(e.is_repair());
  EXPECT_EQ(e.fitness(), oracle.baseline_fitness());
}

TEST(TestOracle, SafetyIsDeterministic) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  util::RngStream rng(1);
  for (int i = 0; i < 100; ++i) {
    const Mutation m = random_mutation(program, rng);
    EXPECT_EQ(oracle.is_safe(m), oracle.is_safe(m));
  }
}

TEST(TestOracle, SafeRateMatchesSpec) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  util::RngStream rng(2);
  int safe = 0;
  constexpr int kSamples = 5000;
  for (int i = 0; i < kSamples; ++i) {
    safe += oracle.is_safe(random_mutation(program, rng)) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(safe) / kSamples, 0.5, 0.03);
}

TEST(TestOracle, SingleSafeMutationPassesTheSuite) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  util::RngStream rng(3);
  int checked = 0;
  while (checked < 50) {
    const Mutation m = random_mutation(program, rng);
    if (!oracle.is_safe(m)) continue;
    const Patch patch{m};
    const Evaluation e = oracle.evaluate(patch);
    EXPECT_EQ(e.required_passed, e.required_total);
    ++checked;
  }
}

TEST(TestOracle, SingleUnsafeMutationFailsAtLeastOneTest) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  util::RngStream rng(4);
  int checked = 0;
  while (checked < 50) {
    const Mutation m = random_mutation(program, rng);
    if (oracle.is_safe(m)) continue;
    const Patch patch{m};
    const Evaluation e = oracle.evaluate(patch);
    EXPECT_LT(e.required_passed, e.required_total);
    ++checked;
  }
}

TEST(TestOracle, EvaluationIsDeterministic) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  util::RngStream rng(5);
  const Patch patch = random_patch(program, 12, rng);
  const Evaluation a = oracle.evaluate(patch);
  const Evaluation b = oracle.evaluate(patch);
  EXPECT_EQ(a.required_passed, b.required_passed);
  EXPECT_EQ(a.bug_test_passed, b.bug_test_passed);
}

TEST(TestOracle, PairwiseInterferenceMatchesCalibratedRate) {
  // Fig 4a's mechanism: the measured pass rate of x-mutation safe patches
  // tracks (1-q)^C(x,2).
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  PoolConfig pool_config;
  pool_config.target_size = 600;
  pool_config.seed = 6;
  const auto pool = MutationPool::precompute(oracle, pool_config);
  util::RngStream rng(7);
  constexpr std::size_t kX = 30;
  constexpr int kTrials = 800;
  int passed = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto patch = sample_from_pool(pool.mutations(), kX, rng);
    const auto e = oracle.evaluate(patch);
    if (e.required_passed == e.required_total) ++passed;
  }
  const double expected =
      datasets::pass_probability(kX, program.spec().interference());
  EXPECT_NEAR(static_cast<double>(passed) / kTrials, expected, 0.06);
}

TEST(TestOracle, RepairRequiresRelevantMutationAndCleanSuite) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  util::RngStream rng(8);
  // Find a repair-relevant mutation; alone it must be a full repair.
  int found = 0;
  for (int i = 0; i < 200000 && found < 5; ++i) {
    const Mutation m = random_mutation(program, rng);
    if (!oracle.is_repair_relevant(m)) continue;
    ++found;
    const Patch patch{m};
    const Evaluation e = oracle.evaluate(patch);
    EXPECT_TRUE(e.bug_test_passed);
    EXPECT_TRUE(e.is_repair());
    EXPECT_EQ(e.fitness(), oracle.baseline_fitness() + 1);
  }
  EXPECT_EQ(found, 5);
}

TEST(TestOracle, MultiEditScenarioNeedsTwoRelevantMutations) {
  auto spec = toy_spec();
  spec.min_repair_edits = 2;
  const ProgramModel program(spec);
  const TestOracle oracle(program);
  util::RngStream rng(9);
  std::vector<Mutation> relevant;
  for (int i = 0; i < 400000 && relevant.size() < 2; ++i) {
    const Mutation m = random_mutation(program, rng);
    if (oracle.is_repair_relevant(m) &&
        (relevant.empty() || relevant[0].key() != m.key())) {
      relevant.push_back(m);
    }
  }
  ASSERT_EQ(relevant.size(), 2u);
  const Patch single{relevant[0]};
  EXPECT_FALSE(oracle.evaluate(single).bug_test_passed);
  Patch both = {relevant[0], relevant[1]};
  canonicalize(both);
  EXPECT_TRUE(oracle.evaluate(both).bug_test_passed);
}

TEST(TestOracle, RelevantMutationsAreSafe) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  util::RngStream rng(10);
  for (int i = 0; i < 50000; ++i) {
    const Mutation m = random_mutation(program, rng);
    if (oracle.is_repair_relevant(m)) {
      EXPECT_TRUE(oracle.is_safe(m));
    }
  }
}

TEST(TestOracle, SuiteRunsAreCounted) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  util::RngStream rng(11);
  EXPECT_EQ(oracle.suite_runs(), 0u);
  const Patch patch = random_patch(program, 3, rng);
  for (int i = 0; i < 9; ++i) (void)oracle.evaluate(patch);
  EXPECT_EQ(oracle.suite_runs(), 9u);
  // Introspection does not count.
  (void)oracle.is_safe(patch[0]);
  EXPECT_EQ(oracle.suite_runs(), 9u);
}

TEST(TestOracle, CountingIsThreadSafe) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&oracle, &program, t] {
      util::RngStream rng(20 + t);
      for (int i = 0; i < 500; ++i) {
        const Patch patch = random_patch(program, 2, rng);
        (void)oracle.evaluate(patch);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(oracle.suite_runs(), 2000u);
}

TEST(TestOracle, FitnessNeverExceedsTestsPlusBug) {
  const ProgramModel program(toy_spec());
  const TestOracle oracle(program);
  util::RngStream rng(12);
  for (int i = 0; i < 200; ++i) {
    const Patch patch = random_patch(program, 1 + i % 20, rng);
    const Evaluation e = oracle.evaluate(patch);
    EXPECT_LE(e.fitness(), oracle.required_tests() + 1);
    EXPECT_LE(e.required_passed, e.required_total);
  }
}

}  // namespace
}  // namespace mwr::apr
