// Unit tests for baselines/comparison: the §IV-G harness structure and
// cost accounting.
#include <gtest/gtest.h>

#include "baselines/comparison.hpp"
#include "datasets/scenario.hpp"

namespace mwr::baselines {
namespace {

ComparisonConfig fast_config() {
  ComparisonConfig config;
  config.budget = 2000;
  config.pool_target = 400;
  config.seed = 99;
  return config;
}

TEST(Comparison, RunsAllFiveToolsOnAScenario) {
  const auto spec = datasets::scenario_by_name("units");
  const auto comparison = compare_on_scenario(spec, fast_config());
  EXPECT_EQ(comparison.scenario, "units");
  EXPECT_EQ(comparison.language, "C");
  ASSERT_EQ(comparison.tools.size(), 5u);
  EXPECT_EQ(comparison.tools[0].tool, "MWRepair");
  EXPECT_EQ(comparison.tools[1].tool, "GenProg");
  EXPECT_EQ(comparison.tools[2].tool, "RSRepair");
  EXPECT_EQ(comparison.tools[3].tool, "AE");
  EXPECT_EQ(comparison.tools[4].tool, "IslandGA");
  EXPECT_GT(comparison.precompute_runs, 0u);
}

TEST(Comparison, JavaScenariosUseJGenProg) {
  const auto spec = datasets::scenario_by_name("Math8");
  const auto comparison = compare_on_scenario(spec, fast_config());
  EXPECT_EQ(comparison.tools[1].tool, "jGenProg");
}

TEST(Comparison, MwRepairLatencyReflectsParallelWidth) {
  const auto spec = datasets::scenario_by_name("units");
  const auto comparison = compare_on_scenario(spec, fast_config());
  const auto& mwrepair = comparison.tools[0];
  // Latency counts cycles plus parallelized precompute — always far below
  // the serial suite-run count of an equivalent serial tool.
  EXPECT_LT(mwrepair.latency_units,
            static_cast<double>(mwrepair.suite_runs +
                                comparison.precompute_runs));
}

TEST(Comparison, TallyAggregatesAcrossScenarios) {
  const auto config = fast_config();
  std::vector<ScenarioComparison> comparisons;
  comparisons.push_back(
      compare_on_scenario(datasets::scenario_by_name("units"), config));
  comparisons.push_back(
      compare_on_scenario(datasets::scenario_by_name("Math8"), config));
  const auto tallies = tally(comparisons);
  // MWRepair, GenProg, jGenProg, RSRepair, AE, IslandGA.
  EXPECT_EQ(tallies.size(), 6u);
  for (const auto& t : tallies) {
    if (t.tool == "GenProg" || t.tool == "jGenProg") {
      EXPECT_EQ(t.attempted, 1u) << t.tool;  // GenProg vs jGenProg split
    } else {
      EXPECT_EQ(t.attempted, 2u) << t.tool;
    }
    EXPECT_LE(t.repaired, t.attempted);
  }
}

TEST(Comparison, DeterministicPerSeed) {
  const auto spec = datasets::scenario_by_name("Math8");
  const auto a = compare_on_scenario(spec, fast_config());
  const auto b = compare_on_scenario(spec, fast_config());
  ASSERT_EQ(a.tools.size(), b.tools.size());
  for (std::size_t i = 0; i < a.tools.size(); ++i) {
    EXPECT_EQ(a.tools[i].repaired, b.tools[i].repaired);
    EXPECT_EQ(a.tools[i].suite_runs, b.tools[i].suite_runs);
  }
}

}  // namespace
}  // namespace mwr::baselines
