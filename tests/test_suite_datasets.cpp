// Unit tests for datasets/suite: the twenty-dataset evaluation suite and
// CSV round-tripping.
#include <gtest/gtest.h>

#include <cstdio>

#include "datasets/suite.hpp"

namespace mwr::datasets {
namespace {

TEST(StandardSuite, TwentyDatasetsAtFullSize) {
  const auto suite = standard_suite(1, 16384);
  EXPECT_EQ(suite.size(), 20u);
  std::size_t random_count = 0;
  std::size_t unimodal_count = 0;
  std::size_t c_count = 0;
  std::size_t java_count = 0;
  for (const auto& d : suite) {
    if (d.family == "random") ++random_count;
    if (d.family == "unimodal") ++unimodal_count;
    if (d.family == "C") ++c_count;
    if (d.family == "Java") ++java_count;
  }
  EXPECT_EQ(random_count, 5u);
  EXPECT_EQ(unimodal_count, 5u);
  EXPECT_EQ(c_count, 5u);
  EXPECT_EQ(java_count, 5u);
}

TEST(StandardSuite, FamiliesArriveInTableOrder) {
  const auto suite = standard_suite(1, 16384);
  const std::vector<std::string> family_order = {"random", "unimodal", "C",
                                                 "Java"};
  std::size_t family_index = 0;
  for (const auto& d : suite) {
    while (family_index < family_order.size() &&
           d.family != family_order[family_index]) {
      ++family_index;
    }
    ASSERT_LT(family_index, family_order.size())
        << "family out of order: " << d.family;
  }
}

TEST(StandardSuite, MaxSizeFiltersLargeInstances) {
  const auto suite = standard_suite(1, 1024);
  for (const auto& d : suite) {
    EXPECT_LE(d.options.size(), 1024u) << d.options.name();
  }
  // random/unimodal lose 4096 & 16384; C loses the two gzip scenarios.
  EXPECT_EQ(suite.size(), 14u);
}

TEST(StandardSuite, DeterministicPerSeed) {
  const auto a = standard_suite(5, 256);
  const auto b = standard_suite(5, 256);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].options.values()[0], b[i].options.values()[0]);
  }
}

TEST(CsvRoundTrip, PreservesValues) {
  const auto original = standard_suite(3, 64).front().options;
  const std::string path = ::testing::TempDir() + "/mwr_dataset.csv";
  save_csv(original, path);
  const auto loaded = load_csv("reloaded", path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_NEAR(loaded.value(i), original.value(i), 1e-9);
  }
  EXPECT_EQ(loaded.name(), "reloaded");
  std::remove(path.c_str());
}

TEST(CsvRoundTrip, LoadRejectsMissingFile) {
  EXPECT_THROW(load_csv("x", "/nonexistent/file.csv"), std::runtime_error);
}

TEST(CsvRoundTrip, SaveRejectsUnwritablePath) {
  const auto options = standard_suite(3, 64).front().options;
  EXPECT_THROW(save_csv(options, "/nonexistent-dir/out.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace mwr::datasets
