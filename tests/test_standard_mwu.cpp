// Unit tests for core/standard_mwu: configuration contracts, the
// sample/update protocol, weight invariants, and convergence behavior.
#include <gtest/gtest.h>

#include <numeric>

#include "core/standard_mwu.hpp"

namespace mwr::core {
namespace {

MwuConfig config_for(std::size_t k, std::size_t agents = 16) {
  MwuConfig config;
  config.num_options = k;
  config.num_agents = agents;
  return config;
}

TEST(StandardMwu, RejectsBadConfiguration) {
  EXPECT_THROW(StandardMwu(config_for(0)), std::invalid_argument);
  EXPECT_THROW(StandardMwu(config_for(4, 0)), std::invalid_argument);
  auto bad_eta = config_for(4);
  bad_eta.learning_rate = 0.6;  // eta must be <= 1/2
  EXPECT_THROW(StandardMwu{bad_eta}, std::invalid_argument);
  bad_eta.learning_rate = 0.0;
  EXPECT_THROW(StandardMwu{bad_eta}, std::invalid_argument);
}

TEST(StandardMwu, InitialDistributionIsUniform) {
  StandardMwu mwu(config_for(5));
  const auto p = mwu.probabilities();
  ASSERT_EQ(p.size(), 5u);
  for (const double v : p) EXPECT_DOUBLE_EQ(v, 0.2);
  EXPECT_FALSE(mwu.converged());
}

TEST(StandardMwu, SampleReturnsOneOptionPerAgent) {
  StandardMwu mwu(config_for(8, 12));
  util::RngStream rng(1);
  const auto probes = mwu.sample(rng);
  EXPECT_EQ(probes.size(), 12u);
  EXPECT_EQ(mwu.cpus_per_cycle(), 12u);
  for (const auto o : probes) EXPECT_LT(o, 8u);
}

TEST(StandardMwu, RewardRaisesProbability) {
  StandardMwu mwu(config_for(4, 4));
  util::RngStream rng(2);
  const std::vector<std::size_t> options = {2, 2, 0, 1};
  const std::vector<double> rewards = {1.0, 1.0, 0.0, 0.0};
  mwu.update(options, rewards, rng);
  const auto p = mwu.probabilities();
  EXPECT_GT(p[2], p[0]);
  EXPECT_GT(p[2], 0.25);
  EXPECT_EQ(mwu.best_option(), 2u);
}

TEST(StandardMwu, ZeroRewardsLeaveDistributionUnchanged) {
  StandardMwu mwu(config_for(4, 4));
  util::RngStream rng(3);
  const std::vector<std::size_t> options = {0, 1, 2, 3};
  const std::vector<double> rewards = {0.0, 0.0, 0.0, 0.0};
  mwu.update(options, rewards, rng);
  for (const double v : mwu.probabilities()) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(StandardMwu, UpdateRejectsSizeMismatch) {
  StandardMwu mwu(config_for(4, 4));
  util::RngStream rng(4);
  const std::vector<std::size_t> options = {0, 1};
  const std::vector<double> rewards = {1.0};
  EXPECT_THROW(mwu.update(options, rewards, rng), std::invalid_argument);
}

TEST(StandardMwu, ProbabilitiesAlwaysFormASimplex) {
  StandardMwu mwu(config_for(16, 8));
  util::RngStream rng(5);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const auto probes = mwu.sample(rng);
    std::vector<double> rewards(probes.size());
    for (auto& r : rewards) r = rng.bernoulli(0.5) ? 1.0 : 0.0;
    mwu.update(probes, rewards, rng);
    const auto p = mwu.probabilities();
    const double total = std::accumulate(p.begin(), p.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (const double v : p) EXPECT_GE(v, 0.0);
  }
}

TEST(StandardMwu, WeightsStayBoundedOverLongRuns) {
  // The max-renormalization must keep weights in [0, 1] indefinitely.
  StandardMwu mwu(config_for(4, 8));
  util::RngStream rng(6);
  for (int cycle = 0; cycle < 5000; ++cycle) {
    const auto probes = mwu.sample(rng);
    std::vector<double> rewards(probes.size(), 1.0);
    mwu.update(probes, rewards, rng);
  }
  for (const double w : mwu.weights()) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(StandardMwu, InitResetsState) {
  StandardMwu mwu(config_for(4, 4));
  util::RngStream rng(7);
  mwu.update(std::vector<std::size_t>{0, 0, 0, 0},
             std::vector<double>{1, 1, 1, 1}, rng);
  EXPECT_GT(mwu.probabilities()[0], 0.25);
  mwu.init();
  for (const double v : mwu.probabilities()) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(StandardMwu, ApplyRewardCountsMatchesUpdate) {
  StandardMwu a(config_for(4, 4));
  StandardMwu b(config_for(4, 4));
  util::RngStream rng(8);
  a.update(std::vector<std::size_t>{1, 1, 3, 0},
           std::vector<double>{1, 1, 1, 0}, rng);
  b.apply_reward_counts(std::vector<double>{0, 2, 0, 1});
  const auto pa = a.probabilities();
  const auto pb = b.probabilities();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(pa[i], pb[i], 1e-12);
}

TEST(StandardMwu, ApplyRewardCountsRejectsWrongWidth) {
  StandardMwu mwu(config_for(4, 4));
  EXPECT_THROW(mwu.apply_reward_counts(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(StandardMwu, ConvergesOnDominantOption) {
  auto config = config_for(8, 16);
  StandardMwu mwu(config);
  util::RngStream rng(9);
  OptionSet options("easy", {0.1, 0.1, 0.1, 0.95, 0.1, 0.1, 0.1, 0.1});
  BernoulliOracle oracle(options);
  bool converged = false;
  for (int cycle = 0; cycle < 2000 && !converged; ++cycle) {
    const auto probes = mwu.sample(rng);
    std::vector<double> rewards(probes.size());
    for (std::size_t j = 0; j < probes.size(); ++j) {
      rewards[j] = oracle.sample(probes[j], rng);
    }
    mwu.update(probes, rewards, rng);
    converged = mwu.converged();
  }
  EXPECT_TRUE(converged);
  EXPECT_EQ(mwu.best_option(), 3u);
}

TEST(StandardMwu, KindIsStandard) {
  StandardMwu mwu(config_for(2));
  EXPECT_EQ(mwu.kind(), MwuKind::kStandard);
}

}  // namespace
}  // namespace mwr::core
