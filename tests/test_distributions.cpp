// Unit tests for datasets/distributions: the random and unimodal synthetic
// families of §IV-A.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "datasets/distributions.hpp"

namespace mwr::datasets {
namespace {

TEST(SyntheticSizes, ArePowersOfFourFrom64To16384) {
  EXPECT_EQ(synthetic_sizes(),
            (std::vector<std::size_t>{64, 256, 1024, 4096, 16384}));
}

TEST(MakeRandom, HasRequestedSizeAndName) {
  const auto options = make_random(256, 1);
  EXPECT_EQ(options.size(), 256u);
  EXPECT_EQ(options.name(), "random256");
}

TEST(MakeRandom, IsDeterministicPerSeed) {
  const auto a = make_random(64, 7);
  const auto b = make_random(64, 7);
  const auto c = make_random(64, 8);
  EXPECT_TRUE(std::equal(a.values().begin(), a.values().end(),
                         b.values().begin()));
  EXPECT_FALSE(std::equal(a.values().begin(), a.values().end(),
                          c.values().begin()));
}

TEST(MakeRandom, ValuesAreUniformOnUnitInterval) {
  const auto options = make_random(16384, 2);
  double sum = 0.0;
  for (const double v : options.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / static_cast<double>(options.size()), 0.5, 0.02);
}

TEST(UnimodalCurve, MatchesClosedForm) {
  UnimodalParams params{.a = 2.0, .b = 0.5, .c = 0.25};
  EXPECT_DOUBLE_EQ(unimodal_curve(0.0, params), 0.25);
  EXPECT_NEAR(unimodal_curve(2.0, params), 2.0 * 2.0 * std::exp(-1.0) + 0.25,
              1e-12);
}

TEST(MakeUnimodal, ParametricRescaleHitsFloorAndCeil) {
  UnimodalParams params;
  params.rescale = true;
  params.floor = 0.1;
  params.ceil = 0.9;
  const auto options = make_unimodal(128, params, 3);
  const auto [lo, hi] =
      std::minmax_element(options.values().begin(), options.values().end());
  EXPECT_NEAR(*lo, 0.1, 1e-9);
  EXPECT_NEAR(*hi, 0.9, 1e-9);
}

TEST(MakeUnimodal, ParametricCurveIsSingleTopped) {
  // Without noise the rescaled curve rises to one peak then falls.
  UnimodalParams params{.a = 1.0, .b = 0.4, .c = 0.1};
  params.span = 16.0;
  const auto options = make_unimodal(64, params, 4, /*noise=*/0.0);
  const auto& v = options.values();
  const auto peak = static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
  for (std::size_t i = 0; i + 1 < peak; ++i) EXPECT_LE(v[i], v[i + 1] + 1e-12);
  for (std::size_t i = peak; i + 1 < v.size(); ++i)
    EXPECT_GE(v[i], v[i + 1] - 1e-12);
}

TEST(MakeUnimodal, RawConventionKeepsValuesInUnitInterval) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto options = make_unimodal(256, seed);
    for (const double v : options.values()) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(MakeUnimodal, IsDeterministicPerSeed) {
  const auto a = make_unimodal(128, 9);
  const auto b = make_unimodal(128, 9);
  EXPECT_TRUE(std::equal(a.values().begin(), a.values().end(),
                         b.values().begin()));
}

TEST(MakeUnimodal, DifferentSizesDrawDifferentShapes) {
  // Each size is a fresh (a, b, c) draw — the source of the paper's
  // per-size difficulty variance.
  const auto small = make_unimodal(64, 11);
  const auto large = make_unimodal(256, 11 ^ (256 * 40503ULL));
  EXPECT_NE(small.best_value(), large.best_value());
}

TEST(MakeUnimodal, NoiseBroadensButStaysBounded) {
  UnimodalParams params;
  const auto options = make_unimodal(64, params, 5, /*noise=*/0.2);
  for (const double v : options.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

class UnimodalSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UnimodalSizeSweep, BestOptionIsAnInteriorOrEarlyPeak) {
  const auto options = make_unimodal(GetParam(), 13);
  // The raw-index convention puts the mode at x = 1/b, which the bounded
  // draw keeps inside the instance.
  EXPECT_LT(options.best_option(), options.size());
  EXPECT_GT(options.best_value(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, UnimodalSizeSweep,
                         ::testing::Values(64, 256, 1024, 4096, 16384));

}  // namespace
}  // namespace mwr::datasets
