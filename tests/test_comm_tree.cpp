// Unit tests for the tree-structured allreduce: correctness across world
// sizes (including non-powers-of-two) and its logarithmic congestion
// advantage over the centralized reduction.
#include <gtest/gtest.h>

#include <cmath>

#include "parallel/comm.hpp"

namespace mwr::parallel {
namespace {

class TreeAllreduceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeAllreduceSweep, SumsCorrectlyOnEveryRank) {
  CommWorld world(GetParam());
  world.run([&](Comm& comm) {
    const double r = static_cast<double>(comm.rank());
    const auto sum = comm.allreduce_sum_tree({r, 1.0, -r});
    const auto n = static_cast<double>(comm.size());
    ASSERT_EQ(sum.size(), 3u);
    EXPECT_DOUBLE_EQ(sum[0], n * (n - 1.0) / 2.0);
    EXPECT_DOUBLE_EQ(sum[1], n);
    EXPECT_DOUBLE_EQ(sum[2], -n * (n - 1.0) / 2.0);
  });
}

TEST_P(TreeAllreduceSweep, RepeatedCallsStayConsistent) {
  CommWorld world(GetParam());
  world.run([&](Comm& comm) {
    for (int round = 1; round <= 5; ++round) {
      const auto sum =
          comm.allreduce_sum_tree({static_cast<double>(round)});
      EXPECT_DOUBLE_EQ(sum.at(0),
                       static_cast<double>(round) *
                           static_cast<double>(comm.size()));
      comm.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, TreeAllreduceSweep,
                         ::testing::Values(1, 2, 3, 5, 6, 8, 13, 16, 31));

TEST(TreeAllreduce, CongestionIsLogarithmicNotLinear) {
  constexpr std::size_t kRanks = 32;

  // Centralized: root absorbs n-1 messages.
  CommWorld central(kRanks);
  central.run([&](Comm& comm) {
    (void)comm.allreduce_sum({1.0});
    comm.barrier();
    if (comm.rank() == 0) comm.close_congestion_cycle();
    comm.barrier();
  });

  // Tree: any node absorbs at most ceil(log2 n) messages.
  CommWorld tree(kRanks);
  tree.run([&](Comm& comm) {
    (void)comm.allreduce_sum_tree({1.0});
    comm.barrier();
    if (comm.rank() == 0) comm.close_congestion_cycle();
    comm.barrier();
  });

  const double central_max = central.congestion().max_per_cycle().max();
  const double tree_max = tree.congestion().max_per_cycle().max();
  EXPECT_DOUBLE_EQ(central_max, static_cast<double>(kRanks - 1));
  EXPECT_LE(tree_max, std::ceil(std::log2(kRanks)) + 1.0);
  EXPECT_LT(tree_max, central_max / 3.0);
}

}  // namespace
}  // namespace mwr::parallel
