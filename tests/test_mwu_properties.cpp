// Cross-variant property sweeps: invariants every MWU realization must
// hold, checked over (kind x instance-size) grids with stochastic inputs.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "core/mwu.hpp"
#include "datasets/distributions.hpp"

namespace mwr::core {
namespace {

using Param = std::tuple<MwuKind, std::size_t>;

class MwuInvariants : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] MwuConfig config() const {
    MwuConfig config;
    config.num_options = std::get<1>(GetParam());
    config.num_agents = 8;
    return config;
  }
  [[nodiscard]] MwuKind kind() const { return std::get<0>(GetParam()); }
};

TEST_P(MwuInvariants, ProbabilitiesStayOnTheSimplexUnderNoise) {
  const auto strategy = make_mwu(kind(), config());
  util::RngStream rng(1);
  for (int cycle = 0; cycle < 60; ++cycle) {
    const auto probes = strategy->sample(rng);
    ASSERT_EQ(probes.size(), strategy->cpus_per_cycle());
    std::vector<double> rewards(probes.size());
    for (auto& r : rewards) r = rng.bernoulli(0.5) ? 1.0 : 0.0;
    strategy->update(probes, rewards, rng);
    const auto p = strategy->probabilities();
    ASSERT_EQ(p.size(), config().num_options);
    double total = 0.0;
    for (const double v : p) {
      EXPECT_GE(v, -1e-12);
      EXPECT_LE(v, 1.0 + 1e-12);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST_P(MwuInvariants, SampledOptionsAreInRange) {
  const auto strategy = make_mwu(kind(), config());
  util::RngStream rng(2);
  for (int cycle = 0; cycle < 20; ++cycle) {
    for (const auto option : strategy->sample(rng)) {
      EXPECT_LT(option, config().num_options);
    }
    // Keep the protocol legal: update with all-zero rewards.
    const auto probes = strategy->sample(rng);
    strategy->update(probes, std::vector<double>(probes.size(), 0.0), rng);
  }
}

TEST_P(MwuInvariants, BestOptionHasMaximalProbability) {
  const auto strategy = make_mwu(kind(), config());
  util::RngStream rng(3);
  for (int cycle = 0; cycle < 40; ++cycle) {
    const auto probes = strategy->sample(rng);
    std::vector<double> rewards(probes.size());
    for (std::size_t j = 0; j < probes.size(); ++j) {
      rewards[j] = probes[j] % 3 == 0 ? 1.0 : 0.0;
    }
    strategy->update(probes, rewards, rng);
  }
  const auto p = strategy->probabilities();
  const std::size_t best = strategy->best_option();
  for (const double v : p) EXPECT_LE(v, p[best] + 1e-12);
}

TEST_P(MwuInvariants, InitRestoresUniformityAndUnconvergence) {
  const auto strategy = make_mwu(kind(), config());
  util::RngStream rng(4);
  for (int cycle = 0; cycle < 30; ++cycle) {
    const auto probes = strategy->sample(rng);
    std::vector<double> rewards(probes.size(), 1.0);
    strategy->update(probes, rewards, rng);
  }
  strategy->init();
  const auto p = strategy->probabilities();
  const double uniform = 1.0 / static_cast<double>(p.size());
  for (const double v : p) {
    // Distributed's round-robin leaves at most one agent of slack.
    EXPECT_NEAR(v, uniform, 0.3 * uniform + 1e-9);
  }
  EXPECT_FALSE(strategy->converged());
}

TEST_P(MwuInvariants, RunsAreReproducibleAcrossIdenticalSeeds) {
  const auto options = datasets::make_random(config().num_options, 55);
  const BernoulliOracle oracle(options);
  auto run_config = config();
  run_config.max_iterations = 300;
  const auto a = run_mwu(kind(), oracle, run_config, util::RngStream(9));
  const auto b = run_mwu(kind(), oracle, run_config, util::RngStream(9));
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.best_option, b.best_option);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.probabilities, b.probabilities);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MwuInvariants,
    ::testing::Combine(::testing::Values(MwuKind::kStandard, MwuKind::kSlate,
                                         MwuKind::kDistributed,
                                         MwuKind::kExp3),
                       ::testing::Values(std::size_t{8}, std::size_t{32},
                                         std::size_t{100})),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mwr::core
