// Unit tests for apr/fault_localization: the coverage spectrum, Ochiai
// scoring, FL-weighted targeting, and the localized-relevance oracle mode.
#include <gtest/gtest.h>

#include <cmath>

#include "apr/fault_localization.hpp"
#include "apr/test_oracle.hpp"

namespace mwr::apr {
namespace {

datasets::ScenarioSpec toy_spec() {
  datasets::ScenarioSpec spec;
  spec.name = "fl-toy";
  spec.statements = 4000;
  spec.tests = 20;
  spec.coverage = 0.7;
  spec.safe_rate = 0.55;
  spec.repair_rate = 0.01;
  spec.optimum = 30;
  spec.seed = 81;
  return spec;
}

TEST(CoverageSpectrum, FailingRegionIsTheExpectedFraction) {
  const ProgramModel program(toy_spec());
  const CoverageSpectrum spectrum(program);
  const double fraction =
      static_cast<double>(spectrum.failing_region().size()) /
      static_cast<double>(program.covered_statements().size());
  EXPECT_NEAR(fraction, kFailingRegionFraction, 0.04);
}

TEST(CoverageSpectrum, FailingRegionMatchesThePredicate) {
  const ProgramModel program(toy_spec());
  const CoverageSpectrum spectrum(program);
  for (const auto s : spectrum.failing_region()) {
    EXPECT_TRUE(spectrum.failing_covers(s));
    EXPECT_TRUE(failing_test_covers(program.spec(), s));
  }
}

TEST(CoverageSpectrum, SuspiciousnessIsZeroOutsideTheFailingRegion) {
  const ProgramModel program(toy_spec());
  const CoverageSpectrum spectrum(program);
  for (const auto s : program.covered_statements()) {
    if (!spectrum.failing_covers(s)) {
      EXPECT_DOUBLE_EQ(spectrum.suspiciousness(s), 0.0);
    } else {
      EXPECT_GT(spectrum.suspiciousness(s), 0.0);
      EXPECT_LE(spectrum.suspiciousness(s), 1.0);
    }
  }
}

TEST(CoverageSpectrum, OchiaiPenalizesHeavilyExercisedStatements) {
  // suspiciousness = 1 / sqrt(1 + passing_count): strictly decreasing.
  const ProgramModel program(toy_spec());
  const CoverageSpectrum spectrum(program);
  for (const auto s : spectrum.failing_region()) {
    const double expected =
        1.0 / std::sqrt(1.0 + spectrum.passing_count(s));
    EXPECT_NEAR(spectrum.suspiciousness(s), expected, 1e-12);
  }
}

TEST(MutationTargeter, RejectsZeroEpsilon) {
  const ProgramModel program(toy_spec());
  const CoverageSpectrum spectrum(program);
  EXPECT_THROW(MutationTargeter(spectrum, 0.0), std::invalid_argument);
}

TEST(MutationTargeter, ConcentratesMassOnTheFailingRegion) {
  const ProgramModel program(toy_spec());
  const CoverageSpectrum spectrum(program);
  const MutationTargeter targeter(spectrum, 0.05);
  const double uniform_mass =
      static_cast<double>(spectrum.failing_region().size()) /
      static_cast<double>(program.covered_statements().size());
  EXPECT_GT(targeter.mass_on_failing_region(), 3.0 * uniform_mass);
}

TEST(MutationTargeter, SampledTargetsFollowTheWeights) {
  const ProgramModel program(toy_spec());
  const CoverageSpectrum spectrum(program);
  const MutationTargeter targeter(spectrum, 0.05);
  util::RngStream rng(1);
  std::size_t in_region = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const Mutation m = targeter.sample(rng);
    EXPECT_TRUE(program.is_covered(m.target));
    if (spectrum.failing_covers(m.target)) ++in_region;
  }
  EXPECT_NEAR(static_cast<double>(in_region) / kSamples,
              targeter.mass_on_failing_region(), 0.02);
}

TEST(LocalizedRelevance, RelevantMutationsLiveOnlyInTheFailingRegion) {
  auto spec = toy_spec();
  spec.relevance_localized = true;
  const ProgramModel program(spec);
  const TestOracle oracle(program);
  util::RngStream rng(2);
  std::size_t relevant = 0;
  for (int i = 0; i < 100000; ++i) {
    const Mutation m = random_mutation(program, rng);
    if (oracle.is_repair_relevant(m)) {
      ++relevant;
      EXPECT_TRUE(failing_test_covers(spec, m.target));
    }
  }
  EXPECT_GT(relevant, 0u);
}

TEST(LocalizedRelevance, OverallRelevanceRateIsPreserved) {
  // Localization concentrates relevance without changing its total rate.
  auto uniform_spec = toy_spec();
  auto localized_spec = toy_spec();
  localized_spec.relevance_localized = true;
  const ProgramModel uniform_program(uniform_spec);
  const ProgramModel localized_program(localized_spec);
  const TestOracle uniform_oracle(uniform_program);
  const TestOracle localized_oracle(localized_program);
  util::RngStream rng(3);
  std::size_t uniform_relevant = 0;
  std::size_t localized_relevant = 0;
  constexpr int kSamples = 300000;
  for (int i = 0; i < kSamples; ++i) {
    const Mutation m = random_mutation(uniform_program, rng);
    if (uniform_oracle.is_repair_relevant(m)) ++uniform_relevant;
    if (localized_oracle.is_repair_relevant(m)) ++localized_relevant;
  }
  const double uniform_rate =
      static_cast<double>(uniform_relevant) / kSamples;
  const double localized_rate =
      static_cast<double>(localized_relevant) / kSamples;
  EXPECT_NEAR(localized_rate, uniform_rate, 0.4 * uniform_rate + 2e-4);
}

TEST(LocalizedRelevance, FlTargetingFindsRelevantMutationsFaster) {
  auto spec = toy_spec();
  spec.relevance_localized = true;
  const ProgramModel program(spec);
  const TestOracle oracle(program);
  const CoverageSpectrum spectrum(program);
  const MutationTargeter targeter(spectrum, 0.05);
  util::RngStream rng(4);
  constexpr int kSamples = 120000;
  std::size_t uniform_hits = 0;
  std::size_t fl_hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (oracle.is_repair_relevant(random_mutation(program, rng)))
      ++uniform_hits;
    if (oracle.is_repair_relevant(targeter.sample(rng))) ++fl_hits;
  }
  EXPECT_GT(fl_hits, 3 * uniform_hits);
}

}  // namespace
}  // namespace mwr::apr
