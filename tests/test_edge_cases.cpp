// Robustness suite: boundary parameters and degenerate inputs across the
// library — the configurations a downstream user will eventually feed it.
#include <gtest/gtest.h>

#include "apr/mutation_pool.hpp"
#include "apr/test_oracle.hpp"
#include "core/mwu.hpp"
#include "core/regret.hpp"
#include "core/slate_mwu.hpp"
#include "datasets/distributions.hpp"

namespace mwr {
namespace {

// --- MWU boundary parameters -----------------------------------------------

TEST(EdgeCases, SingleOptionInstanceConvergesImmediately) {
  core::OptionSet options("one", {0.5});
  const core::BernoulliOracle oracle(options);
  core::MwuConfig config;
  config.num_options = 1;
  for (const auto kind : {core::MwuKind::kStandard, core::MwuKind::kSlate,
                          core::MwuKind::kDistributed, core::MwuKind::kExp3}) {
    const auto result =
        core::run_mwu(kind, oracle, config, util::RngStream(1));
    EXPECT_EQ(result.best_option, 0u) << core::to_string(kind);
    // k = 1: the only option holds all probability from the start.
    EXPECT_TRUE(result.converged) << core::to_string(kind);
    EXPECT_LE(result.iterations, 2u) << core::to_string(kind);
  }
}

TEST(EdgeCases, TwoOptionInstanceIsLegalEverywhere) {
  core::OptionSet options("two", {0.2, 0.8});
  const core::BernoulliOracle oracle(options);
  core::MwuConfig config;
  config.num_options = 2;
  config.max_iterations = 3000;
  for (const auto kind : {core::MwuKind::kStandard, core::MwuKind::kSlate,
                          core::MwuKind::kExp3}) {
    const auto result =
        core::run_mwu(kind, oracle, config, util::RngStream(2));
    EXPECT_EQ(result.best_option, 1u) << core::to_string(kind);
  }
}

TEST(EdgeCases, SlateWithGammaOneIsFullEvaluation) {
  core::MwuConfig config;
  config.num_options = 6;
  config.exploration = 1.0;  // slate == whole option set, pure exploration
  core::SlateMwu mwu(config);
  EXPECT_EQ(mwu.slate_size(), 6u);
  util::RngStream rng(3);
  const auto slate = mwu.sample(rng);
  EXPECT_EQ(slate.size(), 6u);
  // Max achievable probability is the uniform floor: never converges.
  EXPECT_NEAR(mwu.max_achievable_probability(), 1.0 / 6.0, 1e-12);
}

TEST(EdgeCases, DistributedWithFullExplorationNeverLearnsButStaysLegal) {
  core::MwuConfig config;
  config.num_options = 8;
  config.exploration = 1.0;  // every observation is a random option
  config.max_iterations = 50;
  core::OptionSet options("flat", std::vector<double>(8, 0.5));
  const core::BernoulliOracle oracle(options);
  const auto result =
      core::run_mwu(core::MwuKind::kDistributed, oracle, config,
                    util::RngStream(4));
  EXPECT_LE(result.iterations, 50u);
  for (const double p : result.probabilities) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(EdgeCases, ZeroValueOptionsNeverRewardAndNeverWin) {
  std::vector<double> values(10, 0.0);
  values[7] = 0.6;
  core::OptionSet options("mostly-dead", std::move(values));
  const core::BernoulliOracle oracle(options);
  core::MwuConfig config;
  config.num_options = 10;
  const auto result = core::run_mwu(core::MwuKind::kStandard, oracle, config,
                                    util::RngStream(5));
  EXPECT_EQ(result.best_option, 7u);
}

TEST(EdgeCases, MaxIterationsZeroReturnsInitialState) {
  core::OptionSet options("two", {0.2, 0.8});
  const core::BernoulliOracle oracle(options);
  core::MwuConfig config;
  config.num_options = 2;
  config.max_iterations = 0;
  const auto result = core::run_mwu(core::MwuKind::kStandard, oracle, config,
                                    util::RngStream(6));
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.evaluations, 0u);
  EXPECT_DOUBLE_EQ(result.probabilities[0], 0.5);
}

// --- Oracle and pool boundaries ---------------------------------------------

TEST(EdgeCases, OracleAtTheSixtyFourTestCap) {
  datasets::ScenarioSpec spec;
  spec.name = "cap";
  spec.statements = 500;
  spec.tests = 64;  // the bitmask model's limit
  spec.coverage = 0.5;
  spec.safe_rate = 0.5;
  spec.seed = 9;
  const apr::ProgramModel program(spec);
  const apr::TestOracle oracle(program);
  util::RngStream rng(7);
  const auto patch = apr::random_patch(program, 5, rng);
  const auto e = oracle.evaluate(patch);
  EXPECT_EQ(e.required_total, 64u);
  EXPECT_LE(e.required_passed, 64u);
}

TEST(EdgeCases, FullCoverageProgramIsLegal) {
  datasets::ScenarioSpec spec;
  spec.name = "full-cov";
  spec.statements = 300;
  spec.coverage = 1.0;
  spec.seed = 10;
  const apr::ProgramModel program(spec);
  EXPECT_EQ(program.covered_statements().size(), 300u);
}

TEST(EdgeCases, NearZeroSafeRateYieldsAlmostNoPool) {
  datasets::ScenarioSpec spec;
  spec.name = "hostile";
  spec.statements = 500;
  spec.tests = 30;
  spec.coverage = 0.5;
  spec.safe_rate = 0.01;
  spec.seed = 11;
  const apr::ProgramModel program(spec);
  const apr::TestOracle oracle(program);
  apr::PoolConfig config;
  config.target_size = 500;
  config.max_attempts = 3000;
  config.seed = 12;
  const auto pool = apr::MutationPool::precompute(oracle, config);
  // Yield tracks the safe rate; the budget guard stops the search.
  EXPECT_LT(pool.size(), 120u);
  EXPECT_LE(pool.attempts(), 3000u);
}

TEST(EdgeCases, SafeRateNearOneMakesEverythingSafe) {
  datasets::ScenarioSpec spec;
  spec.name = "benign";
  spec.statements = 500;
  spec.tests = 10;
  spec.coverage = 0.5;
  spec.safe_rate = 0.999;
  spec.seed = 13;
  const apr::ProgramModel program(spec);
  const apr::TestOracle oracle(program);
  util::RngStream rng(14);
  int safe = 0;
  for (int i = 0; i < 2000; ++i) {
    safe += oracle.is_safe(apr::random_mutation(program, rng)) ? 1 : 0;
  }
  EXPECT_GT(safe, 1950);
}

TEST(EdgeCases, EmptyPatchAlwaysMatchesBaseline) {
  datasets::ScenarioSpec spec;
  spec.name = "baseline";
  spec.statements = 200;
  spec.seed = 15;
  const apr::ProgramModel program(spec);
  const apr::TestOracle oracle(program);
  for (int i = 0; i < 10; ++i) {
    const auto e = oracle.evaluate({});
    EXPECT_EQ(e.fitness(), oracle.baseline_fitness());
  }
}

// --- Instrumentation boundaries ---------------------------------------------

TEST(EdgeCases, RegretTraceRecordsPmaxPerCycle) {
  const auto options = datasets::make_unimodal(16, 16);
  core::MwuConfig config;
  config.num_options = 16;
  config.max_iterations = 50;
  config.convergence_tol = 0.0;
  const auto trace = core::run_mwu_with_regret(
      core::MwuKind::kStandard, options, config, util::RngStream(17));
  ASSERT_EQ(trace.max_probability.size(), trace.cumulative.size());
  for (const double p : trace.max_probability) {
    EXPECT_GE(p, 1.0 / 16.0 - 1e-9);
    EXPECT_LE(p, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace mwr
