// Unit tests for parallel/mailbox: matching semantics, ordering, and
// concurrent producers.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "parallel/mailbox.hpp"

namespace mwr::parallel {
namespace {

TEST(Mailbox, DeliversInFifoOrder) {
  Mailbox box;
  box.push({0, 1, {1.0}});
  box.push({0, 1, {2.0}});
  EXPECT_DOUBLE_EQ(box.recv().payload[0], 1.0);
  EXPECT_DOUBLE_EQ(box.recv().payload[0], 2.0);
}

TEST(Mailbox, TagFilterSkipsNonMatching) {
  Mailbox box;
  box.push({0, 1, {1.0}});
  box.push({0, 2, {2.0}});
  const Message m = box.recv(kAnySource, 2);
  EXPECT_DOUBLE_EQ(m.payload[0], 2.0);
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, SourceFilterSkipsNonMatching) {
  Mailbox box;
  box.push({3, 0, {3.0}});
  box.push({5, 0, {5.0}});
  const Message m = box.recv(5, kAnyTag);
  EXPECT_EQ(m.source, 5);
  EXPECT_DOUBLE_EQ(m.payload[0], 5.0);
}

TEST(Mailbox, NonOvertakingPerChannel) {
  Mailbox box;
  box.push({1, 7, {10.0}});
  box.push({2, 7, {99.0}});
  box.push({1, 7, {20.0}});
  EXPECT_DOUBLE_EQ(box.recv(1, 7).payload[0], 10.0);
  EXPECT_DOUBLE_EQ(box.recv(1, 7).payload[0], 20.0);
}

TEST(Mailbox, TryRecvReturnsNulloptWhenEmpty) {
  Mailbox box;
  EXPECT_FALSE(box.try_recv().has_value());
  box.push({0, 0, {}});
  EXPECT_TRUE(box.try_recv().has_value());
  EXPECT_FALSE(box.try_recv().has_value());
}

TEST(Mailbox, TryRecvHonorsFilters) {
  Mailbox box;
  box.push({1, 1, {}});
  EXPECT_FALSE(box.try_recv(2, kAnyTag).has_value());
  EXPECT_FALSE(box.try_recv(kAnySource, 9).has_value());
  EXPECT_TRUE(box.try_recv(1, 1).has_value());
}

TEST(Mailbox, RecvBlocksUntilPush) {
  Mailbox box;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.push({4, 2, {7.0}});
  });
  const Message m = box.recv(4, 2);  // blocks until the producer runs
  EXPECT_DOUBLE_EQ(m.payload[0], 7.0);
  producer.join();
}

TEST(Mailbox, ConcurrentProducersLoseNothing) {
  Mailbox box;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.push({p, 0, {static_cast<double>(i)}});
      }
    });
  }
  for (auto& t : producers) t.join();
  // Per-source FIFO: payloads from each producer arrive in order.
  std::vector<int> next(kProducers, 0);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    const Message m = box.recv();
    EXPECT_EQ(static_cast<int>(m.payload[0]), next[m.source]);
    ++next[static_cast<std::size_t>(m.source)];
  }
  EXPECT_EQ(box.pending(), 0u);
}

TEST(PayloadVec, SmallPayloadsStayInline) {
  const PayloadVec empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.spilled());

  const PayloadVec small{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(small.size(), 4u);
  EXPECT_FALSE(small.spilled());
  EXPECT_DOUBLE_EQ(small[0], 1.0);
  EXPECT_DOUBLE_EQ(small.at(3), 4.0);
  EXPECT_THROW((void)small.at(4), std::out_of_range);
}

TEST(PayloadVec, LargePayloadsSpillToHeap) {
  const PayloadVec large{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(large.size(), 5u);
  EXPECT_TRUE(large.spilled());
  EXPECT_DOUBLE_EQ(large[4], 5.0);
}

TEST(PayloadVec, RoundTripsThroughVectorAtEitherSize) {
  for (const std::size_t n : {0u, 3u, 4u, 5u, 64u}) {
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i);
    PayloadVec payload(values);
    EXPECT_EQ(payload.size(), n);
    EXPECT_EQ(payload.spilled(), n > PayloadVec::kInlineDoubles);
    const std::vector<double> back = std::move(payload);
    EXPECT_EQ(back, values);
  }
}

TEST(PayloadVec, IteratorsCoverTheWholePayload) {
  const PayloadVec payload{2.0, 4.0, 8.0};
  double sum = 0.0;
  for (const double v : payload) sum += v;
  EXPECT_DOUBLE_EQ(sum, 14.0);
}

TEST(Mailbox, InlinePayloadSurvivesQueueing) {
  Mailbox box;
  box.push({0, 0, {1.5, 2.5}});
  const Message m = box.recv();
  EXPECT_FALSE(m.payload.spilled());
  EXPECT_DOUBLE_EQ(m.payload[0], 1.5);
  EXPECT_DOUBLE_EQ(m.payload[1], 2.5);
}

}  // namespace
}  // namespace mwr::parallel
