// Cross-cutting tests: the umbrella header compiles and exposes the API;
// the decomposition-based slate sampler matches the systematic one; the
// evaluation sweep is thread-count invariant.
#include <gtest/gtest.h>

#include <set>

#include "mwrepair.hpp"

namespace mwr {
namespace {

TEST(UmbrellaHeader, ExposesTheWholeApi) {
  // Smoke: one symbol from each major module, through the single include.
  const auto options = datasets::make_unimodal(8, 1);
  const core::BernoulliOracle oracle(options);
  core::MwuConfig config;
  config.num_options = 8;
  const auto result =
      core::run_mwu(core::MwuKind::kStandard, oracle, config,
                    util::RngStream(1));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(datasets::c_scenarios().size(), 5u);
  EXPECT_EQ(costmodel::symbolic(core::MwuKind::kStandard,
                                costmodel::Property::kMemory),
            "O(k)");
}

TEST(SlateSamplers, DecompositionSamplerReturnsValidSlates) {
  core::MwuConfig config;
  config.num_options = 30;
  config.exploration = 0.2;  // slate of 6
  core::SlateMwu mwu(config);
  mwu.set_sampler(core::SlateMwu::Sampler::kDecomposition);
  EXPECT_EQ(mwu.sampler(), core::SlateMwu::Sampler::kDecomposition);
  util::RngStream rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const auto slate = mwu.sample(rng);
    ASSERT_EQ(slate.size(), 6u);
    std::set<std::size_t> unique(slate.begin(), slate.end());
    EXPECT_EQ(unique.size(), 6u);
    for (const auto i : slate) EXPECT_LT(i, 30u);
  }
}

TEST(SlateSamplers, BothSamplersRealizeTheSameMarginals) {
  // Run a few update cycles to skew the weights, then compare inclusion
  // frequencies between the two samplers on the frozen state.
  core::MwuConfig config;
  config.num_options = 12;
  config.exploration = 0.25;  // slate of 3
  core::SlateMwu mwu(config);
  util::RngStream rng(3);
  for (int cycle = 0; cycle < 50; ++cycle) {
    const auto slate = mwu.sample(rng);
    std::vector<double> rewards(slate.size());
    for (std::size_t j = 0; j < slate.size(); ++j) {
      rewards[j] = slate[j] < 4 ? 1.0 : 0.0;
    }
    mwu.update(slate, rewards, rng);
  }

  constexpr int kTrials = 40000;
  std::vector<int> systematic_counts(12, 0);
  std::vector<int> decomposition_counts(12, 0);
  mwu.set_sampler(core::SlateMwu::Sampler::kSystematic);
  for (int t = 0; t < kTrials; ++t) {
    for (const auto i : mwu.sample(rng)) ++systematic_counts[i];
  }
  mwu.set_sampler(core::SlateMwu::Sampler::kDecomposition);
  for (int t = 0; t < kTrials; ++t) {
    for (const auto i : mwu.sample(rng)) ++decomposition_counts[i];
  }
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(static_cast<double>(systematic_counts[i]) / kTrials,
                static_cast<double>(decomposition_counts[i]) / kTrials, 0.02)
        << "option " << i;
  }
}

TEST(SlateSamplers, DecompositionSamplerStillConverges) {
  core::OptionSet options("easy", {0.05, 0.9, 0.05, 0.05, 0.05, 0.05, 0.05,
                                   0.05, 0.05, 0.05});
  const core::BernoulliOracle oracle(options);
  core::MwuConfig config;
  config.num_options = 10;
  config.exploration = 0.2;
  config.learning_rate = 0.2;
  config.max_iterations = 5000;
  core::SlateMwu mwu(config);
  mwu.set_sampler(core::SlateMwu::Sampler::kDecomposition);
  const auto result = core::run_mwu(mwu, oracle, config, util::RngStream(4));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.best_option, 1u);
}

TEST(ParallelEvaluation, ThreadCountDoesNotChangeTheCells) {
  costmodel::EvalConfig config;
  config.seeds = 2;
  config.max_size = 64;
  config.max_iterations = 1500;
  config.master_seed = 5;
  config.threads = 1;
  const auto serial = costmodel::run_evaluation(config);
  config.threads = 4;
  const auto parallel_cells = costmodel::run_evaluation(config);
  ASSERT_EQ(serial.size(), parallel_cells.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].dataset, parallel_cells[i].dataset);
    EXPECT_EQ(serial[i].kind, parallel_cells[i].kind);
    EXPECT_EQ(serial[i].iterations.mean(), parallel_cells[i].iterations.mean());
    EXPECT_EQ(serial[i].accuracy.mean(), parallel_cells[i].accuracy.mean());
    EXPECT_EQ(serial[i].converged_runs, parallel_cells[i].converged_runs);
  }
}

TEST(ParallelEvaluation, BatchedProbeEvaluationIsDeterministicAcrossThreadCounts) {
  // run_mwu's batched probe evaluation splits one child stream per probe
  // (in probe order) before fanning out, so the trajectory depends only on
  // the seed: any two eval_threads >= 2 values are identical, for every
  // algorithm.
  const auto options = datasets::make_unimodal(48, 9);
  const core::BernoulliOracle oracle(options);
  for (const auto kind : {core::MwuKind::kStandard, core::MwuKind::kSlate,
                          core::MwuKind::kDistributed}) {
    core::MwuConfig config;
    config.num_options = 48;
    config.num_agents = 16;
    config.max_iterations = 3000;
    config.eval_threads = 2;
    const auto two =
        core::run_mwu(kind, oracle, config, util::RngStream(11));
    config.eval_threads = 4;
    const auto four =
        core::run_mwu(kind, oracle, config, util::RngStream(11));
    EXPECT_EQ(two.converged, four.converged);
    EXPECT_EQ(two.iterations, four.iterations);
    EXPECT_EQ(two.best_option, four.best_option);
    ASSERT_EQ(two.probabilities.size(), four.probabilities.size());
    for (std::size_t i = 0; i < two.probabilities.size(); ++i) {
      EXPECT_EQ(two.probabilities[i], four.probabilities[i]);
    }
  }
}

TEST(ParallelEvaluation, SerialPathIsTheHistoricalTrajectory) {
  // eval_threads == 1 must consume the master stream exactly as the
  // pre-batching serial loop did (no split() calls), so seeded runs
  // reproduce historical results bit-for-bit.
  const auto options = datasets::make_unimodal(32, 3);
  const core::BernoulliOracle oracle(options);
  core::MwuConfig config;
  config.num_options = 32;
  config.num_agents = 8;
  config.max_iterations = 2000;

  // Reference: hand-rolled serial loop against the same strategy.
  const auto strategy = core::make_mwu(core::MwuKind::kStandard, config);
  util::RngStream rng(17);
  std::size_t iterations = 0;
  bool converged = false;
  std::vector<double> rewards;
  for (std::size_t t = 0; t < config.max_iterations; ++t) {
    const auto probes = strategy->sample(rng);
    rewards.resize(probes.size());
    for (std::size_t j = 0; j < probes.size(); ++j) {
      rewards[j] = oracle.sample(probes[j], rng);
    }
    strategy->update(probes, rewards, rng);
    ++iterations;
    if (strategy->converged()) {
      converged = true;
      break;
    }
  }

  config.eval_threads = 1;
  const auto result = core::run_mwu(core::MwuKind::kStandard, oracle, config,
                                    util::RngStream(17));
  EXPECT_EQ(result.converged, converged);
  EXPECT_EQ(result.iterations, iterations);
  EXPECT_EQ(result.best_option, strategy->best_option());
}

}  // namespace
}  // namespace mwr
