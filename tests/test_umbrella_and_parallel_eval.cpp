// Cross-cutting tests: the umbrella header compiles and exposes the API;
// the decomposition-based slate sampler matches the systematic one; the
// evaluation sweep is thread-count invariant.
#include <gtest/gtest.h>

#include <set>

#include "mwrepair.hpp"

namespace mwr {
namespace {

TEST(UmbrellaHeader, ExposesTheWholeApi) {
  // Smoke: one symbol from each major module, through the single include.
  const auto options = datasets::make_unimodal(8, 1);
  const core::BernoulliOracle oracle(options);
  core::MwuConfig config;
  config.num_options = 8;
  const auto result =
      core::run_mwu(core::MwuKind::kStandard, oracle, config,
                    util::RngStream(1));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(datasets::c_scenarios().size(), 5u);
  EXPECT_EQ(costmodel::symbolic(core::MwuKind::kStandard,
                                costmodel::Property::kMemory),
            "O(k)");
}

TEST(SlateSamplers, DecompositionSamplerReturnsValidSlates) {
  core::MwuConfig config;
  config.num_options = 30;
  config.exploration = 0.2;  // slate of 6
  core::SlateMwu mwu(config);
  mwu.set_sampler(core::SlateMwu::Sampler::kDecomposition);
  EXPECT_EQ(mwu.sampler(), core::SlateMwu::Sampler::kDecomposition);
  util::RngStream rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const auto slate = mwu.sample(rng);
    ASSERT_EQ(slate.size(), 6u);
    std::set<std::size_t> unique(slate.begin(), slate.end());
    EXPECT_EQ(unique.size(), 6u);
    for (const auto i : slate) EXPECT_LT(i, 30u);
  }
}

TEST(SlateSamplers, BothSamplersRealizeTheSameMarginals) {
  // Run a few update cycles to skew the weights, then compare inclusion
  // frequencies between the two samplers on the frozen state.
  core::MwuConfig config;
  config.num_options = 12;
  config.exploration = 0.25;  // slate of 3
  core::SlateMwu mwu(config);
  util::RngStream rng(3);
  for (int cycle = 0; cycle < 50; ++cycle) {
    const auto slate = mwu.sample(rng);
    std::vector<double> rewards(slate.size());
    for (std::size_t j = 0; j < slate.size(); ++j) {
      rewards[j] = slate[j] < 4 ? 1.0 : 0.0;
    }
    mwu.update(slate, rewards, rng);
  }

  constexpr int kTrials = 40000;
  std::vector<int> systematic_counts(12, 0);
  std::vector<int> decomposition_counts(12, 0);
  mwu.set_sampler(core::SlateMwu::Sampler::kSystematic);
  for (int t = 0; t < kTrials; ++t) {
    for (const auto i : mwu.sample(rng)) ++systematic_counts[i];
  }
  mwu.set_sampler(core::SlateMwu::Sampler::kDecomposition);
  for (int t = 0; t < kTrials; ++t) {
    for (const auto i : mwu.sample(rng)) ++decomposition_counts[i];
  }
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(static_cast<double>(systematic_counts[i]) / kTrials,
                static_cast<double>(decomposition_counts[i]) / kTrials, 0.02)
        << "option " << i;
  }
}

TEST(SlateSamplers, DecompositionSamplerStillConverges) {
  core::OptionSet options("easy", {0.05, 0.9, 0.05, 0.05, 0.05, 0.05, 0.05,
                                   0.05, 0.05, 0.05});
  const core::BernoulliOracle oracle(options);
  core::MwuConfig config;
  config.num_options = 10;
  config.exploration = 0.2;
  config.learning_rate = 0.2;
  config.max_iterations = 5000;
  core::SlateMwu mwu(config);
  mwu.set_sampler(core::SlateMwu::Sampler::kDecomposition);
  const auto result = core::run_mwu(mwu, oracle, config, util::RngStream(4));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.best_option, 1u);
}

TEST(ParallelEvaluation, ThreadCountDoesNotChangeTheCells) {
  costmodel::EvalConfig config;
  config.seeds = 2;
  config.max_size = 64;
  config.max_iterations = 1500;
  config.master_seed = 5;
  config.threads = 1;
  const auto serial = costmodel::run_evaluation(config);
  config.threads = 4;
  const auto parallel_cells = costmodel::run_evaluation(config);
  ASSERT_EQ(serial.size(), parallel_cells.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].dataset, parallel_cells[i].dataset);
    EXPECT_EQ(serial[i].kind, parallel_cells[i].kind);
    EXPECT_EQ(serial[i].iterations.mean(), parallel_cells[i].iterations.mean());
    EXPECT_EQ(serial[i].accuracy.mean(), parallel_cells[i].accuracy.mean());
    EXPECT_EQ(serial[i].converged_runs, parallel_cells[i].converged_runs);
  }
}

}  // namespace
}  // namespace mwr
