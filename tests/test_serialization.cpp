// Unit tests for core/serialization: checkpoint round-trips for all four
// strategies and format/compatibility errors.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/distributed_mwu.hpp"
#include "core/serialization.hpp"
#include "core/standard_mwu.hpp"
#include "datasets/distributions.hpp"

namespace mwr::core {
namespace {

MwuConfig config_for(std::size_t k) {
  MwuConfig config;
  config.num_options = k;
  return config;
}

// Advance a strategy a few cycles so it carries non-trivial state.
void warm_up(MwuStrategy& strategy, const CostOracle& oracle,
             std::uint64_t seed) {
  util::RngStream rng(seed);
  for (int cycle = 0; cycle < 20; ++cycle) {
    const auto probes = strategy.sample(rng);
    std::vector<double> rewards(probes.size());
    for (std::size_t j = 0; j < probes.size(); ++j) {
      rewards[j] = oracle.sample(probes[j], rng);
    }
    strategy.update(probes, rewards, rng);
  }
}

class SerializationRoundTrip : public ::testing::TestWithParam<MwuKind> {};

TEST_P(SerializationRoundTrip, RestoresProbabilitiesExactly) {
  const auto options = datasets::make_unimodal(16, 9);
  const BernoulliOracle oracle(options);
  const auto config = config_for(16);

  const auto original = make_mwu(GetParam(), config);
  warm_up(*original, oracle, 11);

  std::stringstream buffer;
  save_state(*original, buffer);

  const auto restored = make_mwu(GetParam(), config);
  load_state(*restored, buffer);

  const auto p_original = original->probabilities();
  const auto p_restored = restored->probabilities();
  ASSERT_EQ(p_original.size(), p_restored.size());
  for (std::size_t i = 0; i < p_original.size(); ++i) {
    EXPECT_NEAR(p_original[i], p_restored[i], 1e-12) << to_string(GetParam());
  }
  EXPECT_EQ(original->best_option(), restored->best_option());
  EXPECT_EQ(original->converged(), restored->converged());
}

TEST_P(SerializationRoundTrip, RestoredStrategyContinuesIdentically) {
  const auto options = datasets::make_unimodal(16, 10);
  const BernoulliOracle oracle(options);
  const auto config = config_for(16);

  const auto a = make_mwu(GetParam(), config);
  warm_up(*a, oracle, 21);
  std::stringstream buffer;
  save_state(*a, buffer);
  const auto b = make_mwu(GetParam(), config);
  load_state(*b, buffer);

  // Same subsequent inputs => identical trajectories.
  util::RngStream rng_a(31);
  util::RngStream rng_b(31);
  for (int cycle = 0; cycle < 10; ++cycle) {
    const auto probes_a = a->sample(rng_a);
    const auto probes_b = b->sample(rng_b);
    EXPECT_EQ(probes_a, probes_b);
    std::vector<double> rewards(probes_a.size(), 1.0);
    a->update(probes_a, rewards, rng_a);
    b->update(probes_b, rewards, rng_b);
  }
  EXPECT_EQ(a->probabilities(), b->probabilities());
}

INSTANTIATE_TEST_SUITE_P(Kinds, SerializationRoundTrip,
                         ::testing::Values(MwuKind::kStandard, MwuKind::kSlate,
                                           MwuKind::kDistributed,
                                           MwuKind::kExp3),
                         [](const auto& info) { return to_string(info.param); });

TEST(Serialization, RejectsBadMagic) {
  const auto strategy = make_mwu(MwuKind::kStandard, config_for(4));
  std::stringstream buffer("not-a-checkpoint\n");
  EXPECT_THROW(load_state(*strategy, buffer), std::runtime_error);
}

TEST(Serialization, RejectsKindMismatch) {
  const auto standard = make_mwu(MwuKind::kStandard, config_for(4));
  std::stringstream buffer;
  save_state(*standard, buffer);
  const auto slate = make_mwu(MwuKind::kSlate, config_for(4));
  EXPECT_THROW(load_state(*slate, buffer), std::runtime_error);
}

TEST(Serialization, RejectsOptionCountMismatch) {
  const auto a = make_mwu(MwuKind::kStandard, config_for(4));
  std::stringstream buffer;
  save_state(*a, buffer);
  const auto b = make_mwu(MwuKind::kStandard, config_for(8));
  EXPECT_THROW(load_state(*b, buffer), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedState) {
  const auto a = make_mwu(MwuKind::kStandard, config_for(4));
  std::stringstream buffer;
  save_state(*a, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  const auto b = make_mwu(MwuKind::kStandard, config_for(4));
  EXPECT_THROW(load_state(*b, truncated), std::runtime_error);
}

TEST(Serialization, FileRoundTrip) {
  const auto options = datasets::make_unimodal(8, 12);
  const BernoulliOracle oracle(options);
  const auto a = make_mwu(MwuKind::kStandard, config_for(8));
  warm_up(*a, oracle, 41);
  const std::string path = ::testing::TempDir() + "/mwr_checkpoint.txt";
  save_state_file(*a, path);
  const auto b = make_mwu(MwuKind::kStandard, config_for(8));
  load_state_file(*b, path);
  EXPECT_EQ(a->probabilities(), b->probabilities());
  std::remove(path.c_str());
  EXPECT_THROW(load_state_file(*b, "/nonexistent/checkpoint.txt"),
               std::runtime_error);
}

TEST(Serialization, SetWeightsValidates) {
  StandardMwu mwu(config_for(3));
  EXPECT_THROW(mwu.set_weights({1.0}), std::invalid_argument);
  EXPECT_THROW(mwu.set_weights({1.0, -1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(mwu.set_weights({0.0, 0.0, 0.0}), std::invalid_argument);
  mwu.set_weights({0.5, 1.0, 0.5});
  EXPECT_DOUBLE_EQ(mwu.probabilities()[1], 0.5);
}

TEST(Serialization, SetChoicesValidates) {
  DistributedMwu mwu(config_for(4));
  std::vector<std::uint32_t> wrong_size(3, 0);
  EXPECT_THROW(mwu.set_choices(wrong_size), std::invalid_argument);
  std::vector<std::uint32_t> out_of_range(mwu.population(), 9);
  EXPECT_THROW(mwu.set_choices(out_of_range), std::invalid_argument);
  std::vector<std::uint32_t> valid(mwu.population(), 2);
  mwu.set_choices(valid);
  EXPECT_DOUBLE_EQ(mwu.probabilities()[2], 1.0);
}

}  // namespace
}  // namespace mwr::core
