// Unit tests for core/option_set: validation, best-in-hindsight, the
// Table III accuracy metric, and the oracle decorators.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/option_set.hpp"

namespace mwr::core {
namespace {

TEST(OptionSet, StoresNameAndValues) {
  OptionSet options("demo", {0.1, 0.9, 0.5});
  EXPECT_EQ(options.name(), "demo");
  EXPECT_EQ(options.size(), 3u);
  EXPECT_DOUBLE_EQ(options.value(1), 0.9);
}

TEST(OptionSet, RejectsEmptySet) {
  EXPECT_THROW(OptionSet("empty", {}), std::invalid_argument);
}

TEST(OptionSet, RejectsOutOfRangeValues) {
  EXPECT_THROW(OptionSet("bad", {0.5, 1.5}), std::invalid_argument);
  EXPECT_THROW(OptionSet("bad", {-0.1}), std::invalid_argument);
  EXPECT_THROW(OptionSet("bad", {std::nan("")}), std::invalid_argument);
}

TEST(OptionSet, BestOptionIsArgmax) {
  OptionSet options("demo", {0.3, 0.8, 0.2, 0.8});
  EXPECT_EQ(options.best_option(), 1u);  // ties break to the lowest index
  EXPECT_DOUBLE_EQ(options.best_value(), 0.8);
}

TEST(OptionSet, ValueAccessorBoundsChecks) {
  OptionSet options("demo", {0.5});
  EXPECT_THROW((void)options.value(5), std::out_of_range);
}

TEST(OptionSet, AccuracyIsPerfectForBestOption) {
  OptionSet options("demo", {0.2, 0.9});
  EXPECT_DOUBLE_EQ(options.accuracy_percent(1), 100.0);
}

TEST(OptionSet, AccuracyIsRelativePercentError) {
  OptionSet options("demo", {0.45, 0.9});
  // |0.9 - 0.45| / 0.9 = 50% error => 50% accuracy.
  EXPECT_DOUBLE_EQ(options.accuracy_percent(0), 50.0);
}

TEST(OptionSet, AccuracyHandlesAllZeroValues) {
  OptionSet options("demo", {0.0, 0.0});
  EXPECT_DOUBLE_EQ(options.accuracy_percent(1), 100.0);
}

TEST(BernoulliOracle, SampleRateMatchesValue) {
  OptionSet options("demo", {0.25, 0.75});
  BernoulliOracle oracle(options);
  EXPECT_EQ(oracle.num_options(), 2u);
  util::RngStream rng(1);
  int hits = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    hits += oracle.sample(0, rng) > 0.0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.25, 0.01);
}

TEST(BernoulliOracle, DegenerateValuesAreDeterministic) {
  OptionSet options("demo", {0.0, 1.0});
  BernoulliOracle oracle(options);
  util::RngStream rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(oracle.sample(0, rng), 0.0);
    EXPECT_DOUBLE_EQ(oracle.sample(1, rng), 1.0);
  }
}

TEST(CountingOracle, CountsEveryEvaluation) {
  OptionSet options("demo", {0.5});
  BernoulliOracle inner(options);
  CountingOracle oracle(inner);
  util::RngStream rng(3);
  EXPECT_EQ(oracle.evaluations(), 0u);
  for (int i = 0; i < 37; ++i) (void)oracle.sample(0, rng);
  EXPECT_EQ(oracle.evaluations(), 37u);
  EXPECT_EQ(oracle.num_options(), 1u);
}

TEST(CountingOracle, ThreadSafeCounting) {
  OptionSet options("demo", {0.5});
  BernoulliOracle inner(options);
  CountingOracle oracle(inner);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&oracle, t] {
      util::RngStream rng(10 + t);
      for (int i = 0; i < 1000; ++i) (void)oracle.sample(0, rng);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(oracle.evaluations(), 4000u);
}

}  // namespace
}  // namespace mwr::core
