// Fixture: unordered containers used keyed-only (lookup/insert/count)
// are fine in bit-identity domains — only *iteration* is order-sensitive.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

class Cache {
 public:
  bool seen(std::uint64_t key) const { return members_.count(key) != 0; }

  void remember(std::uint64_t key, double value) { map_[key] = value; }

  double lookup(std::uint64_t key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? 0.0 : it->second;
  }

 private:
  std::unordered_set<std::uint64_t> members_;
  std::unordered_map<std::uint64_t, double> map_;
};

}  // namespace fixture
