// Fixture: src/parallel/transport/ is the one subtree allowed to touch the
// OS IPC primitives directly — it IS the transport layer the raw-ipc rule
// funnels everyone else through.  This file must lint clean with zero
// suppressions despite using the full banned vocabulary.
#include <cstddef>

extern "C" {
void* mmap(void*, unsigned long, int, int, int, long);
int munmap(void*, unsigned long);
int shm_open(const char*, int, unsigned int);
int socketpair(int, int, int, int*);
int fork();
int waitpid(int, int*, int);
}

namespace fixture::transport {

void* ring_segment(std::size_t bytes) {
  return mmap(nullptr, bytes, 0, 0, shm_open("/mwr-ring", 0, 0600), 0);
}

void release(void* p, std::size_t bytes) { munmap(p, bytes); }

int launch_worker() {
  int fds[2];
  socketpair(1, 1, 0, fds);
  const int pid = fork();
  int status = 0;
  if (pid > 0) waitpid(pid, &status, 0);
  return status;
}

}  // namespace fixture::transport
