// Fixture: the annotated wrappers are the approved spelling — no
// findings even though this is real locking code.
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace fixture {

class Gate {
 public:
  void open() {
    const mwr::util::MutexLock lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }

  void wait_open() {
    mwr::util::MutexLock lock(mutex_);
    while (!open_) cv_.wait(mutex_);
  }

 private:
  mwr::util::Mutex mutex_;
  mwr::util::CondVar cv_;
  bool open_ MWR_GUARDED_BY(mutex_) = false;
};

}  // namespace fixture
