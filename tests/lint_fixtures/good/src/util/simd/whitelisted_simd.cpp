// Fixture: src/util/simd/ is the dispatch seam — the one directory where
// intrinsics are allowed, so this file must lint clean.
#include <immintrin.h>

namespace fixture {

double kernel_sum(const double* w) {
  const __m256d acc = _mm256_add_pd(_mm256_loadu_pd(w),
                                    _mm256_loadu_pd(w + 4));
  double out[4];
  _mm256_storeu_pd(out, acc);
  return out[0] + out[1] + out[2] + out[3];
}

}  // namespace fixture
