// Fixture: correctly justified suppressions are honored (and counted).
#include <random>

namespace fixture {

unsigned entropy_for_bench_warmup() {
  // mwr-lint: allow(nondeterministic-seed) reason=fixture demonstrating a justified trailing suppression
  std::random_device device;
  return device();
}

unsigned entropy_inline() {
  std::random_device device;  // mwr-lint: allow(nondeterministic-seed) reason=fixture demonstrating same-line form
  return device();
}

}  // namespace fixture
