// Fixture: banned identifiers in comments and string literals must NOT
// be reported — e.g. std::random_device, rand(), std::mutex, or
// std::chrono::system_clock mentioned right here in prose.
#include <string>

namespace fixture {

/* Block comments too: std::this_thread::get_id() and
   reinterpret_cast<std::uintptr_t>(p) are fine inside comments. */
std::string diagnostics_help() {
  return "never seed from std::random_device or time(nullptr); "
         "see std::chrono::steady_clock docs";
}

std::string raw_literal_help() {
  return R"(naked std::mutex and std::lock_guard<std::mutex> in a raw
            string literal are prose, not code)";
}

}  // namespace fixture
