// Fixture: src/serve/control_socket.cpp is whitelisted BY EXACT FILENAME
// for the raw-ipc rule — it is the campaign server's one audited socket
// seam.  This stand-in uses the banned vocabulary and must lint clean
// with zero suppressions; its siblings under src/serve/ enjoy no such
// liberty (see bad/raw-ipc-serve/).
extern "C" {
int socket(int, int, int);
int bind(int, const void*, unsigned int);
int listen(int, int);
int connect(int, const void*, unsigned int);
}

namespace fixture::serve {

int listen_control(const char* /*path*/) {
  const int fd = socket(1, 1, 0);
  bind(fd, nullptr, 0);
  listen(fd, 128);
  return fd;
}

int dial_control(const char* /*path*/) {
  const int fd = socket(1, 1, 0);
  connect(fd, nullptr, 0);
  return fd;
}

}  // namespace fixture::serve
