// Fixture: src/serve/checkpoint.cpp is whitelisted BY EXACT FILENAME for
// the raw-ipc rule — it is the checkpoint codec's one audited durable-write
// seam (tmp file + ::write + fsync + rename; durability needs raw fds).
// This stand-in uses the banned vocabulary and must lint clean with zero
// suppressions; its siblings under src/serve/ enjoy no such liberty (see
// bad/raw-ipc-serve/).
extern "C" {
int open(const char*, int, ...);
long write(int, const void*, unsigned long);
int fsync(int);
int close(int);
}

namespace fixture::serve {

bool durable_write(const char* path, const void* bytes, unsigned long n) {
  const int fd = open(path, 0);
  if (fd < 0) return false;
  const bool ok = ::write(fd, bytes, n) == static_cast<long>(n) &&
                  fsync(fd) == 0;
  close(fd);
  return ok;
}

}  // namespace fixture::serve
