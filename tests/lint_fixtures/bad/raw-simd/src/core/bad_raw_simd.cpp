// Fixture: direct SIMD intrinsics outside src/util/simd/ must be flagged.
#include <immintrin.h>

namespace fixture {

double vector_sum(const double* w) {
  __m256d acc = _mm256_loadu_pd(w);
  acc = _mm256_add_pd(acc, _mm256_loadu_pd(w + 4));
  double out[4];
  _mm256_storeu_pd(out, acc);
  return out[0] + out[1] + out[2] + out[3];
}

__attribute__((target("avx2"))) double gated(const double* w) {
  const __m128d lo = _mm_loadu_pd(w);
  double out[2];
  _mm_storeu_pd(out, lo);
  return out[0] + out[1];
}

}  // namespace fixture
