// Fixture: malformed suppressions are themselves findings.
#include <random>

namespace fixture {

unsigned missing_reason() {
  // mwr-lint: allow(nondeterministic-seed)
  std::random_device device;  // the allow above has no reason= -> error
  return device();
}

unsigned unknown_rule() {
  std::random_device device;  // mwr-lint: allow(made-up-rule) reason=nope
  return device();
}

}  // namespace fixture
