// Fixture: the raw-ipc whitelist for the campaign server covers exactly
// one file — src/serve/control_socket.cpp.  A naked socket anywhere else
// in src/serve (here, a hypothetical side-channel in the server proper)
// must still be a finding: the subsystem's control plane funnels every
// byte through that one audited seam.
extern "C" {
int socket(int, int, int);
int bind(int, const void*, unsigned int);
int listen(int, int);
int connect(int, const void*, unsigned int);
long read(int, void*, unsigned long);
}

namespace fixture::serve {

int open_side_channel() {
  const int fd = socket(1, 1, 0);  // finding
  bind(fd, nullptr, 0);            // finding
  listen(fd, 8);                   // finding
  return fd;
}

int dial_peer_daemon() {
  const int fd = socket(1, 1, 0);  // finding
  connect(fd, nullptr, 0);         // finding
  return fd;
}

long scrape_fd(int fd, void* buf, unsigned long n) {
  return ::read(fd, buf, n);  // finding
}

}  // namespace fixture::serve
