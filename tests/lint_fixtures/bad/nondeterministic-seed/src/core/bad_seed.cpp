// Fixture: ambient entropy in a bit-identity domain.  Each banned form
// must be reported by the nondeterministic-seed rule.
#include <cstdlib>
#include <random>

namespace fixture {

unsigned ambient_seed() {
  std::random_device device;  // finding: hardware entropy
  return device();
}

void reseed_libc() {
  srand(42);                       // finding: libc generator seeding
  const int draw = rand() % 100;   // finding: libc generator draw
  (void)draw;
}

}  // namespace fixture
