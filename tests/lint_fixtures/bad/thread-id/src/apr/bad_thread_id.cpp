// Fixture: thread identity leaking into a bit-identity domain.
#include <functional>
#include <thread>

namespace fixture {

std::size_t shard_by_thread() {
  // finding: get_id() differs run to run; pass an explicit rank instead.
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace fixture
