// Fixture: address values flowing into hashes in a bit-identity domain.
#include <cstdint>
#include <functional>

namespace fixture {

struct Node {
  int value;
};

std::size_t hash_by_address(const Node* node) {
  return std::hash<const Node*>{}(node);  // finding: pointer hash
}

std::uint64_t address_as_key(const Node* node) {
  return reinterpret_cast<std::uintptr_t>(node);  // finding: ASLR leak
}

}  // namespace fixture
