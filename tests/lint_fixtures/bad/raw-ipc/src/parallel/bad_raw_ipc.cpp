// Fixture: naked OS IPC primitives outside src/parallel/transport/.
// Process boundaries must go through the Transport abstraction; ad-hoc
// mmap/socket/fork plumbing bypasses the versioned wire format, abort
// propagation, and congestion accounting.
#include <cstddef>

extern "C" {
void* mmap(void*, unsigned long, int, int, int, long);
int munmap(void*, unsigned long);
int shm_open(const char*, int, unsigned int);
int socket(int, int, int);
int socketpair(int, int, int, int*);
int fork();
int waitpid(int, int*, int);
long read(int, void*, unsigned long);
long write(int, const void*, unsigned long);
}

namespace fixture {

void* map_shared_segment(std::size_t bytes) {
  return mmap(nullptr, bytes, 0, 0, -1, 0);  // finding
}

void unmap_segment(void* p, std::size_t bytes) {
  munmap(p, bytes);  // finding
}

int open_segment(const char* name) {
  return shm_open(name, 0, 0600);  // finding
}

int make_socket() {
  return socket(1, 1, 0);  // finding
}

int make_pair(int* fds) {
  return socketpair(1, 1, 0, fds);  // finding
}

int spawn_and_reap() {
  const int pid = fork();  // finding
  int status = 0;
  waitpid(pid, &status, 0);  // finding
  return status;
}

long drain_fd(int fd, void* buf, unsigned long n) {
  return ::read(fd, buf, n);  // finding
}

long feed_fd(int fd, const void* buf, unsigned long n) {
  return ::write(fd, buf, n);  // finding
}

}  // namespace fixture
