// Fixture: iterating an unordered container in a bit-identity domain.
// Iteration order depends on hasher, load factor, and libstdc++ version,
// so anything accumulated in that order breaks bit-identity.
#include <string>
#include <unordered_map>

namespace fixture {

double sum_weights(const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& entry : weights) {  // finding: range-for
    total += entry.second;
  }
  return total;
}

std::string first_key(
    const std::unordered_map<std::string, double>& weights) {
  return weights.begin()->first;  // finding: iterator access
}

}  // namespace fixture
