// Fixture: raw std synchronization primitives.  Anywhere under src/
// these must go through the annotated util::Mutex / util::MutexLock /
// util::CondVar wrappers so thread-safety analysis sees the locks.
#include <condition_variable>
#include <mutex>

namespace fixture {

std::mutex g_mutex;                // finding
std::condition_variable g_cv;      // finding
bool g_ready = false;

void wait_ready() {
  std::unique_lock<std::mutex> lock(g_mutex);  // finding (x2)
  g_cv.wait(lock, [] { return g_ready; });
}

void set_ready() {
  const std::lock_guard<std::mutex> lock(g_mutex);  // finding (x2)
  g_ready = true;
  g_cv.notify_all();
}

}  // namespace fixture
