// Fixture: clock reads in a bit-identity domain.  The wall-clock rule
// must flag every clock source, not just system_clock.
#include <chrono>
#include <ctime>

namespace fixture {

long clock_seed() {
  const auto now = std::chrono::system_clock::now();  // finding
  return now.time_since_epoch().count();
}

long steady_seed() {
  return std::chrono::steady_clock::now()  // finding
      .time_since_epoch()
      .count();
}

long hires_seed() {
  return std::chrono::high_resolution_clock::now()  // finding
      .time_since_epoch()
      .count();
}

long libc_seed() {
  return static_cast<long>(time(nullptr));  // finding
}

}  // namespace fixture
