// Unit tests for util/rng: determinism, range contracts, statistical
// sanity, and stream independence — the foundation every experiment's
// reproducibility rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "util/rng.hpp"

namespace mwr::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(RngStream, SameSeedSameSequence) {
  RngStream a(7);
  RngStream b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStream, SeedIsRecorded) {
  RngStream rng(12345);
  EXPECT_EQ(rng.seed(), 12345u);
}

TEST(RngStream, UniformInHalfOpenUnitInterval) {
  RngStream rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, UniformRangeRespectsBounds) {
  RngStream rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(RngStream, UniformMeanIsCentered) {
  RngStream rng(5);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngStream, UniformIndexStaysBelowBound) {
  RngStream rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(RngStream, UniformIndexCoversAllValues) {
  RngStream rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngStream, UniformIndexIsUnbiased) {
  RngStream rng(8);
  constexpr std::uint64_t kBound = 5;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform_index(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kSamples, 1.0 / kBound, 0.01);
  }
}

TEST(RngStream, UniformIntIsInclusive) {
  RngStream rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngStream, BernoulliEdgeProbabilities) {
  RngStream rng(10);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngStream, BernoulliHitsItsRate) {
  RngStream rng(11);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngStream, WeightedChoiceRespectsWeights) {
  RngStream rng(12);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.weighted_choice(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kSamples, 0.75, 0.02);
}

TEST(RngStream, WeightedChoiceZeroTotalSignalsError) {
  RngStream rng(13);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.weighted_choice(weights), weights.size());
}

TEST(RngStream, WeightedChoiceSingleOption) {
  RngStream rng(14);
  const std::vector<double> weights = {2.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted_choice(weights), 0u);
}

TEST(RngStream, SampleWithoutReplacementIsDistinct) {
  RngStream rng(15);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(50, 20);
    ASSERT_EQ(sample.size(), 20u);
    const std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (const auto s : sample) EXPECT_LT(s, 50u);
  }
}

TEST(RngStream, SparseSampleMatchesDensePartialFisherYates) {
  // count * 8 <= population takes the hash-map branch; it must emit
  // exactly the permutation prefix the dense branch would (identical
  // draws, identical output), so seeded experiments are branch-invariant.
  for (const std::uint64_t seed : {1ull, 22ull, 333ull}) {
    for (const auto& [population, count] :
         {std::pair<std::size_t, std::size_t>{10000, 16},
          {4096, 64},
          {129, 16},
          {200, 1}}) {
      RngStream sparse_rng(seed);
      const auto sparse = sparse_rng.sample_without_replacement(population,
                                                               count);
      // Dense reference with a duplicated stream.
      RngStream dense_rng(seed);
      std::vector<std::size_t> pool(population);
      std::iota(pool.begin(), pool.end(), std::size_t{0});
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(
                    dense_rng.uniform_index(population - i));
        std::swap(pool[i], pool[j]);
      }
      pool.resize(count);
      EXPECT_EQ(sparse, pool) << "seed=" << seed << " n=" << population;
    }
  }
}

TEST(RngStream, SparseSampleIsDistinctAndInRange) {
  RngStream rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample = rng.sample_without_replacement(10000, 16);
    ASSERT_EQ(sample.size(), 16u);
    const std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 16u);
    for (const auto s : sample) EXPECT_LT(s, 10000u);
  }
}

TEST(RngStream, SparseSampleIsUniform) {
  // Population 64, count 4 exercises the sparse branch (4 * 8 <= 64);
  // every index should appear with frequency count / population.
  RngStream rng(29);
  std::vector<int> counts(64, 0);
  constexpr int kTrials = 30000;
  for (int t = 0; t < kTrials; ++t) {
    for (const auto i : rng.sample_without_replacement(64, 4)) ++counts[i];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 4.0 / 64.0, 0.01);
  }
}

TEST(RngStream, SampleWithoutReplacementFullPopulation) {
  RngStream rng(16);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngStream, SampleWithoutReplacementIsUniform) {
  RngStream rng(17);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 30000;
  for (int t = 0; t < kTrials; ++t) {
    for (const auto i : rng.sample_without_replacement(10, 3)) ++counts[i];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.3, 0.02);
  }
}

TEST(RngStream, SplitProducesIndependentStreams) {
  RngStream parent(18);
  RngStream child1 = parent.split();
  RngStream child2 = parent.split();
  // Children differ from each other and correlate with neither the parent
  // nor each other over a long window.
  int matches = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++matches;
  }
  EXPECT_EQ(matches, 0);
}

TEST(RngStream, SplitNProducesRequestedCount) {
  RngStream parent(19);
  const auto children = parent.split_n(8);
  EXPECT_EQ(children.size(), 8u);
}

TEST(RngStream, SplitIsDeterministicFromParentSeed) {
  RngStream p1(20);
  RngStream p2(20);
  RngStream c1 = p1.split();
  RngStream c2 = p2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

// Property sweep: Lemire index sampling stays unbiased across bounds.
class UniformIndexSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformIndexSweep, MeanMatchesHalfBound) {
  const std::uint64_t bound = GetParam();
  RngStream rng(21 + bound);
  double sum = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.uniform_index(bound));
  }
  const double expected = static_cast<double>(bound - 1) / 2.0;
  EXPECT_NEAR(sum / kSamples, expected, 0.02 * static_cast<double>(bound) + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformIndexSweep,
                         ::testing::Values(2, 3, 7, 64, 1000, 4096, 1000000));

}  // namespace
}  // namespace mwr::util
