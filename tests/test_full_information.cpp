// Unit tests for Standard MWU's full-information (weighted-majority) mode:
// the textbook realization the paper's §II-B references.
#include <gtest/gtest.h>

#include "core/standard_mwu.hpp"
#include "datasets/distributions.hpp"

namespace mwr::core {
namespace {

MwuConfig full_info_config(std::size_t k) {
  MwuConfig config;
  config.num_options = k;
  config.full_information = true;
  return config;
}

TEST(FullInformation, SamplesEveryOptionExactlyOnce) {
  StandardMwu mwu(full_info_config(12));
  util::RngStream rng(1);
  const auto probes = mwu.sample(rng);
  ASSERT_EQ(probes.size(), 12u);
  for (std::size_t i = 0; i < probes.size(); ++i) EXPECT_EQ(probes[i], i);
  EXPECT_EQ(mwu.cpus_per_cycle(), 12u);
}

TEST(FullInformation, PenaltyUpdateDecaysCostlyOptions) {
  StandardMwu mwu(full_info_config(4));
  util::RngStream rng(2);
  // Option 2 always succeeds (cost 0); the rest always fail (cost 1).
  const std::vector<std::size_t> options = {0, 1, 2, 3};
  const std::vector<double> rewards = {0.0, 0.0, 1.0, 0.0};
  mwu.update(options, rewards, rng);
  const auto p = mwu.probabilities();
  EXPECT_GT(p[2], p[0]);
  // One cycle with eta = 0.025: the ratio is exactly 1 / (1 - eta).
  EXPECT_NEAR(p[2] / p[0], 1.0 / 0.975, 1e-9);
}

TEST(FullInformation, ConvergesDeterministicallyOnSeparatedValues) {
  auto config = full_info_config(8);
  config.learning_rate = 0.2;
  StandardMwu mwu(config);
  util::RngStream rng(3);
  OptionSet options("easy", {0.1, 0.1, 0.1, 0.1, 0.1, 0.9, 0.1, 0.1});
  const BernoulliOracle oracle(options);
  bool converged = false;
  std::size_t cycles = 0;
  while (!converged && cycles < 3000) {
    const auto probes = mwu.sample(rng);
    std::vector<double> rewards(probes.size());
    for (std::size_t j = 0; j < probes.size(); ++j) {
      rewards[j] = oracle.sample(probes[j], rng);
    }
    mwu.update(probes, rewards, rng);
    converged = mwu.converged();
    ++cycles;
  }
  EXPECT_TRUE(converged);
  EXPECT_EQ(mwu.best_option(), 5u);
}

TEST(FullInformation, RunDriverChargesKCpusPerCycle) {
  const auto options = datasets::make_unimodal(16, 4);
  const BernoulliOracle oracle(options);
  auto config = full_info_config(16);
  config.learning_rate = 0.2;
  config.max_iterations = 2000;
  const auto strategy = make_mwu(MwuKind::kStandard, config);
  const auto result = run_mwu(*strategy, oracle, config, util::RngStream(5));
  EXPECT_EQ(result.cpus_per_cycle, 16u);
  EXPECT_EQ(result.evaluations, result.iterations * 16u);
}

TEST(FullInformation, LessProneToLockInThanBanditMode) {
  // Full information evaluates every option every cycle, so an early lucky
  // streak cannot starve the true best option of samples.  Over many seeds
  // its accuracy dominates bandit-mode Standard on a near-tie instance.
  OptionSet options("near-tie", {0.80, 0.85, 0.9, 0.5, 0.5, 0.5, 0.5, 0.5});
  const BernoulliOracle oracle(options);
  int full_hits = 0;
  int bandit_hits = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    auto full = full_info_config(8);
    full.learning_rate = 0.1;
    full.max_iterations = 3000;
    const auto full_result =
        run_mwu(MwuKind::kStandard, oracle, full, util::RngStream(seed));
    if (full_result.best_option == 2) ++full_hits;

    auto bandit = full;
    bandit.full_information = false;
    const auto bandit_result =
        run_mwu(MwuKind::kStandard, oracle, bandit, util::RngStream(seed));
    if (bandit_result.best_option == 2) ++bandit_hits;
  }
  EXPECT_GE(full_hits, bandit_hits);
  EXPECT_GT(full_hits, 24);  // > 80% of seeds
}

}  // namespace
}  // namespace mwr::core
