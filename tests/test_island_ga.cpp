// Unit tests for baselines/island_ga: the partitioned distributed-GA
// surrogate (Schulte-DiLorenzo style, paper §V-B).
#include <gtest/gtest.h>

#include <set>

#include "baselines/island_ga.hpp"

namespace mwr::baselines {
namespace {

datasets::ScenarioSpec easy_spec() {
  datasets::ScenarioSpec spec;
  spec.name = "easy";
  spec.statements = 2000;
  spec.tests = 15;
  spec.coverage = 0.7;
  spec.safe_rate = 0.5;
  spec.repair_rate = 0.05;
  spec.optimum = 30;
  spec.min_repair_edits = 1;
  spec.seed = 61;
  return spec;
}

TEST(IslandGa, RepairsADenseScenario) {
  const apr::ProgramModel program(easy_spec());
  const apr::TestOracle oracle(program);
  IslandGaConfig config;
  config.seed = 1;
  const auto outcome = run_island_ga(oracle, config);
  ASSERT_TRUE(outcome.repaired);
  EXPECT_TRUE(oracle.evaluate(outcome.patch).is_repair());
  EXPECT_LT(outcome.winning_island, config.islands);
}

TEST(IslandGa, LatencyModelsIslandParallelism) {
  const apr::ProgramModel program(easy_spec());
  const apr::TestOracle oracle(program);
  IslandGaConfig config;
  config.islands = 4;
  config.seed = 2;
  const auto outcome = run_island_ga(oracle, config);
  EXPECT_DOUBLE_EQ(outcome.latency_units,
                   static_cast<double>(outcome.suite_runs) / 4.0);
}

TEST(IslandGa, RespectsTheSharedBudget) {
  auto spec = easy_spec();
  spec.min_repair_edits = 100000;  // unrepairable
  const apr::ProgramModel program(spec);
  const apr::TestOracle oracle(program);
  IslandGaConfig config;
  config.max_suite_runs = 600;
  config.seed = 3;
  const auto outcome = run_island_ga(oracle, config);
  EXPECT_FALSE(outcome.repaired);
  EXPECT_LE(outcome.suite_runs, 600u + config.population_per_island);
}

TEST(IslandGa, MigratesOnSchedule) {
  auto spec = easy_spec();
  spec.min_repair_edits = 100000;  // run the full generation budget
  const apr::ProgramModel program(spec);
  const apr::TestOracle oracle(program);
  IslandGaConfig config;
  config.islands = 4;
  config.max_generations = 40;
  config.migration_interval = 10;
  config.max_suite_runs = 1u << 20;
  config.seed = 4;
  const auto outcome = run_island_ga(oracle, config);
  // 40 generations / interval 10 = 4 migration rounds x 4 islands.
  EXPECT_EQ(outcome.migrations, 16u);
}

TEST(IslandGa, SingleIslandDegeneratesToPlainGa) {
  const apr::ProgramModel program(easy_spec());
  const apr::TestOracle oracle(program);
  IslandGaConfig config;
  config.islands = 1;
  config.population_per_island = 40;
  config.seed = 5;
  const auto outcome = run_island_ga(oracle, config);
  EXPECT_TRUE(outcome.repaired);
  EXPECT_EQ(outcome.migrations, 0u);
  EXPECT_EQ(outcome.winning_island, 0u);
}

TEST(IslandGa, DeterministicPerSeed) {
  const apr::ProgramModel program(easy_spec());
  const apr::TestOracle oracle_a(program);
  const apr::TestOracle oracle_b(program);
  IslandGaConfig config;
  config.seed = 6;
  const auto a = run_island_ga(oracle_a, config);
  const auto b = run_island_ga(oracle_b, config);
  EXPECT_EQ(a.repaired, b.repaired);
  EXPECT_EQ(a.suite_runs, b.suite_runs);
  EXPECT_EQ(a.winning_island, b.winning_island);
}

TEST(IslandGa, PartitioningRestrictsEarlyTargets) {
  // With migration disabled, any repair must come from a single island's
  // partition — its patch's covered targets all belong to one residue
  // class of the round-robin split.
  const apr::ProgramModel program(easy_spec());
  const apr::TestOracle oracle(program);
  IslandGaConfig config;
  config.islands = 4;
  config.migration_interval = 1u << 20;  // never migrate
  config.seed = 7;
  const auto outcome = run_island_ga(oracle, config);
  if (!outcome.repaired) GTEST_SKIP() << "no repair with this seed";
  const auto& covered = program.covered_statements();
  std::set<std::size_t> classes;
  for (const auto& m : outcome.patch) {
    const auto it = std::find(covered.begin(), covered.end(), m.target);
    ASSERT_NE(it, covered.end());
    classes.insert(
        static_cast<std::size_t>(it - covered.begin()) % config.islands);
  }
  EXPECT_EQ(classes.size(), 1u);
  EXPECT_EQ(*classes.begin(), outcome.winning_island);
}

}  // namespace
}  // namespace mwr::baselines
