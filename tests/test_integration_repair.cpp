// Integration tests: the full MWRepair pipeline against the named paper
// scenarios, and the §IV-G structural claims.
#include <gtest/gtest.h>

#include "apr/mwrepair.hpp"
#include "baselines/comparison.hpp"
#include "datasets/scenario.hpp"

namespace mwr {
namespace {

TEST(IntegrationRepair, MwRepairRepairsEveryNamedScenario) {
  // The paper's headline §IV-G claim: MWRepair repairs all C and Java
  // scenarios.  (Reduced pool/budget; the bench runs the full setting.)
  for (const auto& family :
       {datasets::c_scenarios(), datasets::java_scenarios()}) {
    for (const auto& spec : family) {
      apr::MwRepairConfig repair_config;
      repair_config.agents = 64;
      repair_config.max_iterations = 160;
      repair_config.seed = 5;
      apr::PoolConfig pool_config;
      // Sparse-repair scenarios (lighttpd) need the large amortized pool to
      // contain any repair-relevant mutation at all (§III-C).
      pool_config.target_size = 12000;
      pool_config.max_attempts = 96000;
      pool_config.seed = 6 ^ spec.seed;
      const auto outcome =
          apr::repair_scenario(spec, repair_config, pool_config);
      EXPECT_TRUE(outcome.repair.repaired) << spec.name;
    }
  }
}

TEST(IntegrationRepair, MultiEditScenariosDefeatSingleEditTools) {
  const auto spec = datasets::scenario_by_name("libtiff-2005-12-14");
  const apr::ProgramModel program(spec);

  // AE (single-edit) cannot repair it with any budget.
  const apr::TestOracle ae_oracle(program);
  baselines::AeConfig ae_config;
  ae_config.max_suite_runs = 4000;
  EXPECT_FALSE(baselines::run_ae(ae_oracle, ae_config).repaired);

  // MWRepair, combining dozens of pooled mutations per probe, repairs it.
  const apr::TestOracle mw_oracle(program);
  apr::PoolConfig pool_config;
  pool_config.target_size = 2000;
  pool_config.seed = 7;
  const auto pool = apr::MutationPool::precompute(mw_oracle, pool_config);
  apr::MwRepairConfig repair_config;
  repair_config.agents = 64;
  repair_config.max_iterations = 160;
  repair_config.seed = 8;
  const apr::MwRepair repair(repair_config);
  const auto outcome = repair.run(mw_oracle, pool);
  EXPECT_TRUE(outcome.repaired);
  EXPECT_GE(outcome.patch.size(), 2u);
}

TEST(IntegrationRepair, RepairPatchesPassVerification) {
  // Every repair the pipeline returns must actually pass the full suite
  // when re-evaluated from scratch.
  const auto spec = datasets::scenario_by_name("units");
  const apr::ProgramModel program(spec);
  const apr::TestOracle oracle(program);
  apr::PoolConfig pool_config;
  pool_config.target_size = 1500;
  pool_config.seed = 9;
  const auto pool = apr::MutationPool::precompute(oracle, pool_config);
  apr::MwRepairConfig repair_config;
  repair_config.agents = 32;
  repair_config.max_iterations = 200;
  repair_config.seed = 10;
  const apr::MwRepair repair(repair_config);
  const auto outcome = repair.run(oracle, pool);
  ASSERT_TRUE(outcome.repaired);
  const apr::TestOracle fresh(program);
  EXPECT_TRUE(fresh.evaluate(outcome.patch).is_repair());
}

TEST(IntegrationRepair, ComparisonPreservesThePapersOrdering) {
  // Structural §IV-G shape on a reduced budget: MWRepair >= every baseline
  // in repairs on the multi-edit scenario set.
  baselines::ComparisonConfig config;  // the bench's own IV-G setting
  config.seed = 20210525;
  const auto libtiff = baselines::compare_on_scenario(
      datasets::scenario_by_name("libtiff-2005-12-14"), config);
  EXPECT_TRUE(libtiff.tools[0].repaired);   // MWRepair
  EXPECT_FALSE(libtiff.tools[2].repaired);  // RSRepair
  EXPECT_FALSE(libtiff.tools[3].repaired);  // AE
}

}  // namespace
}  // namespace mwr
