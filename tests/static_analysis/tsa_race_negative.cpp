// Negative-compile check for the thread-safety annotation layer.
//
// This TU deliberately races a MWR_GUARDED_BY field: `hits_` is guarded
// by `mutex_` but record() touches it with no lock held.  Under Clang
// with -Werror=thread-safety the compile MUST fail — ctest runs this
// through `$CXX -fsyntax-only` with WILL_FAIL, so the test goes red
// exactly when the analysis stops catching the race (e.g. someone
// neuters the macros or drops the warning flags).  It is never linked
// into any binary.
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace mwr::static_analysis_check {

class RacyCounter {
 public:
  void record() {
    ++hits_;  // BUG (on purpose): guarded write without mutex_ held.
  }

  [[nodiscard]] long hits() const {
    const util::MutexLock lock(mutex_);
    return hits_;
  }

 private:
  mutable util::Mutex mutex_;
  long hits_ MWR_GUARDED_BY(mutex_) = 0;
};

inline long poke() {
  RacyCounter counter;
  counter.record();
  return counter.hits();
}

}  // namespace mwr::static_analysis_check
