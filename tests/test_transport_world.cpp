// Cross-backend trajectory bit-identity: run_distributed_spmd_multiprocess
// over the shm ring and over UDS must reproduce the in-process Distributed
// MWU run exactly — same convergence cycle, same winner, same per-rank
// final choices (trajectory_hash), same tracked-message count, and the
// same per-cycle congestion maxima.  The per-rank program is seeded RNG +
// (source, tag)-filtered non-overtaking channels, so the fabric carrying
// the bytes must be unobservable to the trajectory.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <tuple>

#include "core/option_set.hpp"
#include "core/parallel_driver.hpp"

namespace mwr::core {
namespace {

using parallel::transport::TransportKind;

MwuConfig config_for(std::size_t options) {
  MwuConfig config;
  config.num_options = options;
  config.max_iterations = 40;
  config.plurality_threshold = 0.70;
  return config;
}

OptionSet bimodal_options(std::size_t k) {
  std::vector<double> values(k, 0.40);
  values[k / 3] = 0.62;
  return OptionSet("transport-world", values);
}

class CrossBackendIdentity
    : public ::testing::TestWithParam<std::tuple<TransportKind, std::size_t>> {
};

TEST_P(CrossBackendIdentity, MultiprocessTrajectoryMatchesInProcess) {
  const auto [kind, population] = GetParam();
  const auto options = bimodal_options(6);
  const BernoulliOracle oracle(options);
  const auto config = config_for(options.size());
  constexpr std::uint64_t kSeed = 2026;

  const ParallelMwuResult reference =
      run_distributed_spmd(oracle, config, kSeed, population);

  MultiprocessOptions mp;
  mp.kind = kind;
  mp.processes = 3;  // uneven blocks whenever population % 3 != 0
  const ParallelMwuResult mirrored = run_distributed_spmd_multiprocess(
      oracle, config, kSeed, population, mp);

  EXPECT_EQ(mirrored.result.iterations, reference.result.iterations);
  EXPECT_EQ(mirrored.result.converged, reference.result.converged);
  EXPECT_EQ(mirrored.result.best_option, reference.result.best_option);
  EXPECT_EQ(mirrored.result.evaluations, reference.result.evaluations);
  EXPECT_EQ(mirrored.total_messages, reference.total_messages);
  // The bit-identity pin: every rank ended on the same choice.
  EXPECT_EQ(mirrored.trajectory_hash, reference.trajectory_hash);
  // Congestion is a pure function of the trajectory, so the per-cycle
  // maxima must agree moment for moment.
  EXPECT_EQ(mirrored.max_congestion_per_cycle.count(),
            reference.max_congestion_per_cycle.count());
  EXPECT_DOUBLE_EQ(mirrored.max_congestion_per_cycle.mean(),
                   reference.max_congestion_per_cycle.mean());
  EXPECT_DOUBLE_EQ(mirrored.max_congestion_per_cycle.max(),
                   reference.max_congestion_per_cycle.max());
}

INSTANTIATE_TEST_SUITE_P(
    FabricsAndPopulations, CrossBackendIdentity,
    ::testing::Combine(::testing::Values(TransportKind::kShmRing,
                                         TransportKind::kUds),
                       ::testing::Values(std::size_t{1} << 4,
                                         std::size_t{1} << 6,
                                         std::size_t{1} << 8)),
    [](const auto& info) {
      return std::string(
                 parallel::transport::to_string(std::get<0>(info.param))) +
             "_pop" + std::to_string(std::get<1>(info.param));
    });

// Probabilities reported by the multiprocess run are the rank-0 snapshot
// of the identical replicated popularity vector.
TEST(CrossBackendIdentity, ProbabilitiesMatchInProcess) {
  const auto options = bimodal_options(6);
  const BernoulliOracle oracle(options);
  const auto config = config_for(options.size());

  const auto reference = run_distributed_spmd(oracle, config, 5, 48);
  MultiprocessOptions mp;
  mp.kind = TransportKind::kShmRing;
  const auto mirrored =
      run_distributed_spmd_multiprocess(oracle, config, 5, 48, mp);

  ASSERT_EQ(mirrored.result.probabilities.size(),
            reference.result.probabilities.size());
  for (std::size_t i = 0; i < reference.result.probabilities.size(); ++i) {
    EXPECT_DOUBLE_EQ(mirrored.result.probabilities[i],
                     reference.result.probabilities[i])
        << i;
  }
}

}  // namespace
}  // namespace mwr::core
