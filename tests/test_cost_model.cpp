// Unit tests for costmodel/cost_model: the weighted asymptotic model, the
// crossover sweep, and the empirically-grounded recommendation of §IV-E.
#include <gtest/gtest.h>

#include "costmodel/cost_model.hpp"

namespace mwr::costmodel {
namespace {

using core::MwuKind;

TEST(ModeledCost, BreakdownSumsToTotal) {
  FeatureWeights weights{.communication = 2.0, .convergence = 3.0,
                         .cpus = 1.0, .memory = 0.5};
  OperatingPoint point;
  const auto cost = modeled_cost(MwuKind::kStandard, weights, point);
  EXPECT_NEAR(cost.total,
              cost.communication + cost.convergence + cost.cpus + cost.memory,
              1e-9);
  EXPECT_EQ(cost.kind, MwuKind::kStandard);
}

TEST(ModeledCost, ZeroWeightsZeroCost) {
  FeatureWeights weights{.communication = 0, .convergence = 0, .cpus = 0,
                         .memory = 0};
  OperatingPoint point;
  EXPECT_DOUBLE_EQ(modeled_cost(MwuKind::kSlate, weights, point).total, 0.0);
}

TEST(RankAlgorithms, SortedAscending) {
  FeatureWeights weights{.communication = 1.0, .convergence = 1.0};
  OperatingPoint point;
  const auto ranked = rank_algorithms(weights, point);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_LE(ranked[0].total, ranked[1].total);
  EXPECT_LE(ranked[1].total, ranked[2].total);
}

TEST(Recommend, PureAsymptoticsFavorDistributedOnCommunication) {
  // §IV-E.1: with only comm+conv weighted, the asymptotics favor
  // Distributed — the paper concedes this before adding empirical data.
  FeatureWeights weights{.communication = 1.0, .convergence = 1.0};
  OperatingPoint point;
  point.options = 1000;
  EXPECT_EQ(recommend(weights, point), MwuKind::kDistributed);
}

TEST(Recommend, CpuWeightingFlipsToStandard) {
  // §IV-E.1: "a model in which the number of CPUs used in each iteration is
  // weighted ... will prefer Standard instead."
  FeatureWeights weights{.communication = 1.0, .convergence = 1.0,
                         .cpus = 100.0};
  OperatingPoint point;
  point.options = 100000;  // Distributed's k^(1/delta) explodes
  point.agents = 16;
  EXPECT_EQ(recommend(weights, point), MwuKind::kStandard);
}

TEST(CrossoverSweep, ReportsEveryRatioWithCosts) {
  OperatingPoint point;
  const std::vector<double> ratios = {0.1, 1.0, 10.0};
  const auto rows = crossover_sweep(point, ratios);
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(rows[i].comm_weight_ratio, ratios[i]);
    EXPECT_GT(rows[i].standard_cost, 0.0);
    EXPECT_GT(rows[i].distributed_cost, 0.0);
    EXPECT_GT(rows[i].slate_cost, 0.0);
  }
  // Costs grow monotonically in the communication weight.
  EXPECT_LT(rows[0].standard_cost, rows[2].standard_cost);
}

TEST(ExplainRecommendation, MentionsTheWinner) {
  FeatureWeights weights{.communication = 0.001, .convergence = 1.0};
  OperatingPoint point;
  const std::string text = explain_recommendation(weights, point);
  EXPECT_NE(text.find("Recommendation:"), std::string::npos);
  EXPECT_NE(text.find("Standard"), std::string::npos);
}

TEST(EmpiricalCost, UsesCongestionModelPerKind) {
  EmpiricalWeights weights{.communication = 1.0, .latency = 0.0,
                           .evaluations = 0.0};
  // Standard with 64 agents congests 64 per cycle; Distributed with 64
  // agents congests ~ ln n/ln ln n.
  const EmpiricalObservation standard{MwuKind::kStandard, 10.0, 64.0};
  const EmpiricalObservation distributed{MwuKind::kDistributed, 10.0, 64.0};
  EXPECT_GT(empirical_cost(standard, weights),
            10.0 * empirical_cost(distributed, weights) / 10.0);
  EXPECT_DOUBLE_EQ(empirical_cost(standard, weights), 640.0);
}

TEST(EmpiricalCost, EvaluationTermIsCyclesTimesCpus) {
  EmpiricalWeights weights{.communication = 0.0, .latency = 0.0,
                           .evaluations = 2.0};
  const EmpiricalObservation obs{MwuKind::kSlate, 100.0, 50.0};
  EXPECT_DOUBLE_EQ(empirical_cost(obs, weights), 2.0 * 100.0 * 50.0);
}

TEST(RecommendEmpirical, ThePapersHeadlineResult) {
  // Measured-shape observations (units-like, k=1000): Standard converges in
  // ~600 cycles on 64 CPUs; Distributed in ~190 cycles on ~32k CPUs; Slate
  // caps out at 10000 cycles on 50 CPUs.
  const std::vector<EmpiricalObservation> observations = {
      {MwuKind::kStandard, 600.0, 64.0},
      {MwuKind::kDistributed, 190.0, 32000.0},
      {MwuKind::kSlate, 10000.0, 50.0},
  };
  // APR: evaluations dominate -> Standard (the "surprising result").
  EmpiricalWeights apr{.communication = 0.001, .latency = 1.0,
                       .evaluations = 1.0};
  EXPECT_EQ(recommend_empirical(observations, apr), MwuKind::kStandard);
  // Communication-bound deployment -> Distributed.
  EmpiricalWeights network{.communication = 100.0, .latency = 1.0,
                           .evaluations = 0.0001};
  EXPECT_EQ(recommend_empirical(observations, network),
            MwuKind::kDistributed);
}

TEST(RecommendEmpirical, RejectsEmptyObservations) {
  EXPECT_THROW((void)recommend_empirical({}, EmpiricalWeights{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mwr::costmodel
