// Unit tests for parallel/congestion: cycle accounting and the
// balls-into-bins bound, including the statistical property behind the
// paper's Distributed communication claim.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "parallel/congestion.hpp"
#include "util/rng.hpp"

namespace mwr::parallel {
namespace {

TEST(CongestionTracker, RejectsZeroNodes) {
  EXPECT_THROW(CongestionTracker(0), std::invalid_argument);
}

TEST(CongestionTracker, CountsPerDestination) {
  CongestionTracker tracker(4);
  tracker.record(0);
  tracker.record(2);
  tracker.record(2);
  EXPECT_EQ(tracker.current_count(0), 1u);
  EXPECT_EQ(tracker.current_count(1), 0u);
  EXPECT_EQ(tracker.current_count(2), 2u);
  EXPECT_EQ(tracker.current_max(), 2u);
  EXPECT_EQ(tracker.total_messages(), 3u);
}

TEST(CongestionTracker, EndCycleCapturesMaxAndResets) {
  CongestionTracker tracker(3);
  tracker.record(1);
  tracker.record(1);
  tracker.record(0);
  tracker.end_cycle();
  EXPECT_EQ(tracker.current_max(), 0u);
  EXPECT_EQ(tracker.max_per_cycle().count(), 1u);
  EXPECT_DOUBLE_EQ(tracker.max_per_cycle().mean(), 2.0);
  tracker.record(2);
  tracker.end_cycle();
  EXPECT_EQ(tracker.max_per_cycle().count(), 2u);
  EXPECT_DOUBLE_EQ(tracker.max_per_cycle().mean(), 1.5);
  // Totals accumulate across cycles.
  EXPECT_EQ(tracker.total_messages(), 4u);
}

TEST(CongestionTracker, EmptyCycleRecordsZero) {
  CongestionTracker tracker(2);
  tracker.end_cycle();
  EXPECT_DOUBLE_EQ(tracker.max_per_cycle().mean(), 0.0);
}

TEST(CongestionTracker, ConcurrentRecordsAreAllCounted) {
  CongestionTracker tracker(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracker, t] {
      for (int i = 0; i < 1000; ++i) {
        tracker.record(static_cast<std::size_t>((t + i) % 8));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracker.total_messages(), 4000u);
  std::uint64_t sum = 0;
  for (std::size_t n = 0; n < 8; ++n) sum += tracker.current_count(n);
  EXPECT_EQ(sum, 4000u);
}

// Regression (static-analysis bring-up): max_per_cycle_ used to be handed
// out as a const reference while end_cycle() mutated it, so a monitoring
// thread could observe a torn Welford accumulator (count advanced, mean
// not, or vice versa).  The getter now snapshots under the stats mutex;
// every snapshot must be internally consistent — after c closed cycles of
// constant per-cycle maximum m, any observed state has count <= c and
// mean/min/max exactly m (or an empty 0-state), never a mix.
TEST(CongestionTracker, SnapshotStatsAreConsistentUnderConcurrentReads) {
  CongestionTracker tracker(4);
  constexpr int kCycles = 5000;
  constexpr double kMax = 3.0;  // every cycle: one node absorbs 3 messages
  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const util::RunningStats snapshot = tracker.max_per_cycle();
        if (snapshot.count() == 0) continue;
        const bool consistent = snapshot.mean() == kMax &&
                                snapshot.min() == kMax &&
                                snapshot.max() == kMax &&
                                snapshot.count() <= kCycles;
        if (!consistent) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < kCycles; ++c) {
    tracker.record(1);
    tracker.record(1);
    tracker.record(1);
    tracker.end_cycle();
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(tracker.max_per_cycle().count(),
            static_cast<std::size_t>(kCycles));
  EXPECT_DOUBLE_EQ(tracker.max_per_cycle().mean(), kMax);
}

TEST(BallsIntoBins, BoundGrowsSlowly) {
  // ln n / ln ln n: slowly growing, far below n.
  EXPECT_LT(balls_into_bins_bound(64), 4.0);
  EXPECT_LT(balls_into_bins_bound(1024), 6.0);
  EXPECT_LT(balls_into_bins_bound(1u << 20), 8.0);
  EXPECT_GT(balls_into_bins_bound(1u << 20), balls_into_bins_bound(64));
}

TEST(BallsIntoBins, SmallNGuard) {
  EXPECT_DOUBLE_EQ(balls_into_bins_bound(1), 1.0);
  EXPECT_DOUBLE_EQ(balls_into_bins_bound(2), 2.0);
}

// Statistical property: throwing n balls into n bins uniformly at random,
// the maximum load stays within a small constant of ln n / ln ln n — the
// paper's §II-C claim for Distributed's observation pattern.
class BallsIntoBinsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BallsIntoBinsSweep, EmpiricalMaxNearTheBound) {
  const std::size_t n = GetParam();
  util::RngStream rng(77 + n);
  double worst_ratio = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    CongestionTracker tracker(n);
    for (std::size_t ball = 0; ball < n; ++ball) {
      tracker.record(rng.uniform_index(n));
    }
    const double ratio = static_cast<double>(tracker.current_max()) /
                         balls_into_bins_bound(n);
    worst_ratio = std::max(worst_ratio, ratio);
  }
  // High-probability bound with a modest constant.
  EXPECT_LT(worst_ratio, 3.0);
  EXPECT_GT(worst_ratio, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BallsIntoBinsSweep,
                         ::testing::Values(64, 256, 1024, 4096));

}  // namespace
}  // namespace mwr::parallel
