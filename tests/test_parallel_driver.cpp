// Integration tests for core/parallel_driver: the MWU algorithms executed
// for real over the message-passing substrate, with congestion patterns
// checked against Table I's communication column.
#include <gtest/gtest.h>

#include "core/parallel_driver.hpp"
#include "datasets/distributions.hpp"

namespace mwr::core {
namespace {

TEST(StandardSpmd, ConvergesOnEasyInstance) {
  OptionSet options("easy", {0.05, 0.05, 0.95, 0.05});
  const BernoulliOracle oracle(options);
  MwuConfig config;
  config.num_options = 4;
  config.num_agents = 8;
  config.max_iterations = 400;
  const auto run = run_standard_spmd(oracle, config, 42);
  EXPECT_TRUE(run.result.converged);
  EXPECT_EQ(run.result.best_option, 2u);
  EXPECT_EQ(run.result.cpus_per_cycle, 8u);
  EXPECT_GT(run.result.evaluations, 0u);
}

TEST(StandardSpmd, CongestionIsOrderN) {
  OptionSet options("easy", {0.1, 0.9});
  const BernoulliOracle oracle(options);
  MwuConfig config;
  config.num_options = 2;
  config.num_agents = 12;
  config.max_iterations = 20;
  const auto run = run_standard_spmd(oracle, config, 7);
  // The allreduce gathers n-1 contributions at rank 0 every cycle and
  // broadcasts n-1 replies, so the per-cycle maximum is exactly n-1.
  EXPECT_DOUBLE_EQ(run.max_congestion_per_cycle.mean(),
                   static_cast<double>(config.num_agents - 1));
}

TEST(StandardSpmd, ReplicasStayDeterministic) {
  OptionSet options("easy", {0.2, 0.8, 0.3});
  const BernoulliOracle oracle(options);
  MwuConfig config;
  config.num_options = 3;
  config.num_agents = 4;
  config.max_iterations = 50;
  const auto a = run_standard_spmd(oracle, config, 11);
  const auto b = run_standard_spmd(oracle, config, 11);
  EXPECT_EQ(a.result.iterations, b.result.iterations);
  EXPECT_EQ(a.result.best_option, b.result.best_option);
  EXPECT_EQ(a.result.probabilities, b.result.probabilities);
}

TEST(DistributedSpmd, ConvergesOnEasyInstance) {
  OptionSet options("easy", {0.05, 0.95, 0.05, 0.05});
  const BernoulliOracle oracle(options);
  MwuConfig config;
  config.num_options = 4;
  config.max_iterations = 300;
  const auto run =
      run_distributed_spmd(oracle, config, 13, /*population=*/24);
  EXPECT_TRUE(run.result.converged);
  EXPECT_EQ(run.result.best_option, 1u);
  EXPECT_EQ(run.result.cpus_per_cycle, 24u);
}

TEST(DistributedSpmd, CongestionStaysNearBallsIntoBinsBound) {
  OptionSet options("flat", std::vector<double>(8, 0.5));
  const BernoulliOracle oracle(options);
  MwuConfig config;
  config.num_options = 8;
  config.max_iterations = 30;
  config.plurality_threshold = 1.1;  // never converge: measure 30 cycles
  constexpr std::size_t kPopulation = 48;
  const auto run =
      run_distributed_spmd(oracle, config, 17, kPopulation);
  EXPECT_EQ(run.result.iterations, 30u);
  // Mean max-congestion per cycle is within a small constant of
  // ln n / ln ln n, and far below the O(n) worst case.
  const double bound = parallel::balls_into_bins_bound(kPopulation);
  EXPECT_LT(run.max_congestion_per_cycle.mean(), 3.0 * bound);
  EXPECT_LT(run.max_congestion_per_cycle.max(),
            static_cast<double>(kPopulation) / 2.0);
  EXPECT_GT(run.max_congestion_per_cycle.mean(), 1.0);
}

// The superstep engine must reproduce the thread-per-rank trajectory bit
// for bit: every recv is (source, tag)-filtered over non-overtaking
// channels and all randomness is per-rank, so no legal schedule — at any
// worker count — can change what a rank observes.
void expect_same_run(const ParallelMwuResult& a, const ParallelMwuResult& b,
                     const char* label) {
  EXPECT_EQ(a.result.iterations, b.result.iterations) << label;
  EXPECT_EQ(a.result.converged, b.result.converged) << label;
  EXPECT_EQ(a.result.best_option, b.result.best_option) << label;
  EXPECT_EQ(a.result.probabilities, b.result.probabilities) << label;
  EXPECT_EQ(a.result.evaluations, b.result.evaluations) << label;
  EXPECT_EQ(a.total_messages, b.total_messages) << label;
  EXPECT_EQ(a.max_congestion_per_cycle.count(),
            b.max_congestion_per_cycle.count())
      << label;
  EXPECT_EQ(a.max_congestion_per_cycle.mean(),
            b.max_congestion_per_cycle.mean())
      << label;
  EXPECT_EQ(a.max_congestion_per_cycle.max(), b.max_congestion_per_cycle.max())
      << label;
}

TEST(StandardSpmd, SuperstepEngineIsBitIdenticalToThreadPerRank) {
  OptionSet options("easy", {0.2, 0.8, 0.3});
  const BernoulliOracle oracle(options);
  MwuConfig config;
  config.num_options = 3;
  config.num_agents = 8;
  config.max_iterations = 60;
  for (const std::uint64_t seed : {11u, 29u, 47u}) {
    const auto reference = run_standard_spmd(
        oracle, config, seed, parallel::RunPolicy::thread_per_rank());
    for (const std::size_t workers : {1u, 2u, 4u}) {
      const auto engine = run_standard_spmd(
          oracle, config, seed, parallel::RunPolicy::superstep(workers));
      expect_same_run(reference, engine, "standard");
    }
  }
}

TEST(DistributedSpmd, SuperstepEngineIsBitIdenticalToThreadPerRank) {
  OptionSet options("flat", std::vector<double>(6, 0.5));
  const BernoulliOracle oracle(options);
  MwuConfig config;
  config.num_options = 6;
  config.max_iterations = 12;
  config.plurality_threshold = 1.1;  // fixed work on every substrate
  constexpr std::size_t kPopulation = 40;
  for (const std::uint64_t seed : {5u, 23u}) {
    const auto reference =
        run_distributed_spmd(oracle, config, seed, kPopulation,
                             parallel::RunPolicy::thread_per_rank());
    for (const std::size_t workers : {1u, 2u, 4u}) {
      const auto engine =
          run_distributed_spmd(oracle, config, seed, kPopulation,
                               parallel::RunPolicy::superstep(workers));
      expect_same_run(reference, engine, "distributed");
    }
  }
}

TEST(DistributedSpmd, EngineRunsPopulationsBeyondThreadScale) {
  // A population this size would need 2048 OS threads on the historical
  // substrate; the engine runs it on a bounded pool.
  OptionSet options("flat", std::vector<double>(4, 0.5));
  const BernoulliOracle oracle(options);
  MwuConfig config;
  config.num_options = 4;
  config.max_iterations = 2;
  config.plurality_threshold = 1.1;
  const auto run = run_distributed_spmd(oracle, config, 31, 2048,
                                        parallel::RunPolicy::superstep(2));
  EXPECT_EQ(run.result.iterations, 2u);
  EXPECT_EQ(run.result.cpus_per_cycle, 2048u);
  EXPECT_EQ(run.result.evaluations, 2u * 2048u);
}

TEST(DistributedSpmd, FarLessCongestedThanStandardAtSameScale) {
  OptionSet options("easy", {0.3, 0.7});
  const BernoulliOracle oracle(options);
  MwuConfig config;
  config.num_options = 2;
  config.num_agents = 32;
  config.max_iterations = 15;
  config.plurality_threshold = 1.1;
  config.convergence_tol = 0.0;  // keep both running the full 15 cycles
  const auto standard = run_standard_spmd(oracle, config, 19);
  const auto distributed = run_distributed_spmd(oracle, config, 19, 32);
  EXPECT_GT(standard.max_congestion_per_cycle.mean(),
            3.0 * distributed.max_congestion_per_cycle.mean());
}

}  // namespace
}  // namespace mwr::core
