// Unit tests for apr/mutation: canonical keys, patch canonicalization, and
// the random generators every search algorithm shares.
#include <gtest/gtest.h>

#include <set>

#include "apr/mutation.hpp"

namespace mwr::apr {
namespace {

datasets::ScenarioSpec small_spec() {
  datasets::ScenarioSpec spec;
  spec.name = "toy";
  spec.statements = 500;
  spec.coverage = 0.5;
  spec.seed = 7;
  return spec;
}

TEST(MutationKindNames, AreStable) {
  EXPECT_EQ(to_string(MutationKind::kDelete), "delete");
  EXPECT_EQ(to_string(MutationKind::kInsert), "insert");
  EXPECT_EQ(to_string(MutationKind::kSwap), "swap");
}

TEST(MutationKey, DistinguishesKinds) {
  const Mutation del{MutationKind::kDelete, 5, 0};
  const Mutation ins{MutationKind::kInsert, 5, 0};
  const Mutation swp{MutationKind::kSwap, 5, 0};
  EXPECT_NE(del.key(), ins.key());
  EXPECT_NE(del.key(), swp.key());
  EXPECT_NE(ins.key(), swp.key());
}

TEST(MutationKey, DeleteIgnoresDonor) {
  const Mutation a{MutationKind::kDelete, 5, 17};
  const Mutation b{MutationKind::kDelete, 5, 99};
  EXPECT_EQ(a.key(), b.key());
}

TEST(MutationKey, SwapIsSymmetric) {
  const Mutation a{MutationKind::kSwap, 3, 9};
  const Mutation b{MutationKind::kSwap, 9, 3};
  EXPECT_EQ(a.key(), b.key());
}

TEST(MutationKey, InsertIsDirectional) {
  const Mutation a{MutationKind::kInsert, 3, 9};
  const Mutation b{MutationKind::kInsert, 9, 3};
  EXPECT_NE(a.key(), b.key());
}

TEST(Canonicalize, SortsAndDeduplicates) {
  Patch patch = {{MutationKind::kInsert, 9, 2},
                 {MutationKind::kDelete, 1, 0},
                 {MutationKind::kInsert, 9, 2},
                 {MutationKind::kSwap, 4, 2},
                 {MutationKind::kSwap, 2, 4}};
  canonicalize(patch);
  EXPECT_EQ(patch.size(), 3u);
  for (std::size_t i = 1; i < patch.size(); ++i) {
    EXPECT_LT(patch[i - 1].key(), patch[i].key());
  }
}

TEST(RandomMutation, TargetsOnlyCoveredStatements) {
  const ProgramModel program(small_spec());
  util::RngStream rng(1);
  for (int i = 0; i < 500; ++i) {
    const Mutation m = random_mutation(program, rng);
    EXPECT_TRUE(program.is_covered(m.target));
    if (m.kind != MutationKind::kDelete) {
      EXPECT_LT(m.donor, program.num_statements());
    }
  }
}

TEST(RandomMutation, ProducesAllThreeKinds) {
  const ProgramModel program(small_spec());
  util::RngStream rng(2);
  std::set<MutationKind> kinds;
  for (int i = 0; i < 200; ++i) kinds.insert(random_mutation(program, rng).kind);
  EXPECT_EQ(kinds.size(), 3u);
}

TEST(RandomPatch, HasRequestedDistinctEdits) {
  const ProgramModel program(small_spec());
  util::RngStream rng(3);
  const Patch patch = random_patch(program, 20, rng);
  EXPECT_EQ(patch.size(), 20u);
  std::set<std::uint64_t> keys;
  for (const auto& m : patch) keys.insert(m.key());
  EXPECT_EQ(keys.size(), 20u);
}

TEST(SampleFromPool, DrawsDistinctMembers) {
  const ProgramModel program(small_spec());
  util::RngStream rng(4);
  const Patch pool = random_patch(program, 50, rng);
  for (int trial = 0; trial < 50; ++trial) {
    const Patch draw = sample_from_pool(pool, 10, rng);
    EXPECT_EQ(draw.size(), 10u);
    std::set<std::uint64_t> keys;
    for (const auto& m : draw) {
      keys.insert(m.key());
      // Every drawn mutation must exist in the pool.
      EXPECT_TRUE(std::any_of(pool.begin(), pool.end(), [&](const Mutation& p) {
        return p.key() == m.key();
      }));
    }
    EXPECT_EQ(keys.size(), 10u);
  }
}

TEST(SampleFromPool, ClampsToPoolSize) {
  const ProgramModel program(small_spec());
  util::RngStream rng(5);
  const Patch pool = random_patch(program, 5, rng);
  const Patch draw = sample_from_pool(pool, 50, rng);
  EXPECT_EQ(draw.size(), 5u);
}

TEST(SampleFromPool, IsUniformOverThePool) {
  const ProgramModel program(small_spec());
  util::RngStream rng(6);
  const Patch pool = random_patch(program, 10, rng);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    for (const auto& m : sample_from_pool(pool, 3, rng)) {
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (pool[i].key() == m.key()) ++counts[i];
      }
    }
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.3, 0.02);
  }
}

}  // namespace
}  // namespace mwr::apr
