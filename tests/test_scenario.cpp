// Unit tests for datasets/scenario: the analytic repair surface (Fig 4a/4b
// math), interference calibration, and the ten named scenarios.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "datasets/scenario.hpp"

namespace mwr::datasets {
namespace {

TEST(PassProbability, OneForSingleMutation) {
  EXPECT_DOUBLE_EQ(pass_probability(1.0, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(pass_probability(0.5, 0.01), 1.0);
}

TEST(PassProbability, DecaysWithPairCount) {
  const double q = 0.001;
  EXPECT_GT(pass_probability(10, q), pass_probability(20, q));
  EXPECT_NEAR(pass_probability(10, q), std::exp(-q * 45.0), 1e-12);
}

TEST(PassProbability, GzipCalibrationSurvivesAtEighty) {
  // The paper's Fig 4a anchor: > 50% of programs still pass with 80
  // combined safe mutations on gzip.
  const auto spec = scenario_by_name("gzip-2009-08-16");
  EXPECT_GT(pass_probability(80.0, spec.interference()), 0.5);
}

TEST(RepairDensity, ZeroBelowOneMutation) {
  EXPECT_DOUBLE_EQ(repair_density(0.5, 0.03, 0.001), 0.0);
}

TEST(RepairDensity, IsUnimodal) {
  const double p = 0.03;
  const double q = 2e-4;
  const std::size_t mode = repair_optimum(p, q);
  EXPECT_GT(mode, 1u);
  // Strictly below the mode value on both sides.
  const double at_mode = repair_density(static_cast<double>(mode), p, q);
  EXPECT_GT(at_mode, repair_density(1.0, p, q));
  EXPECT_GT(at_mode, repair_density(static_cast<double>(4 * mode), p, q));
}

TEST(RepairOptimum, MovesLeftWithMoreInterference) {
  EXPECT_GT(repair_optimum(0.03, 1e-5), repair_optimum(0.03, 1e-3));
}

TEST(CalibrateInterference, InvertsTheOptimum) {
  for (const std::size_t target : {11u, 48u, 130u, 271u}) {
    const double q = calibrate_interference(0.01, target);
    const std::size_t achieved = repair_optimum(0.01, q, 8 * target + 64);
    EXPECT_NEAR(static_cast<double>(achieved), static_cast<double>(target),
                2.0)
        << "target " << target;
  }
}

TEST(CalibrateInterference, RejectsZeroTarget) {
  EXPECT_THROW((void)calibrate_interference(0.01, 0), std::invalid_argument);
}

TEST(Scenarios, FiveCAndFiveJava) {
  EXPECT_EQ(c_scenarios().size(), 5u);
  EXPECT_EQ(java_scenarios().size(), 5u);
  for (const auto& s : c_scenarios()) EXPECT_EQ(s.language, "C");
  for (const auto& s : java_scenarios()) EXPECT_EQ(s.language, "Java");
}

TEST(Scenarios, SizesMatchThePapersTables) {
  EXPECT_EQ(scenario_by_name("units").options, 1000u);
  EXPECT_EQ(scenario_by_name("gzip-2009-08-16").options, 5000u);
  EXPECT_EQ(scenario_by_name("gzip-2009-09-26").options, 2000u);
  EXPECT_EQ(scenario_by_name("libtiff-2005-12-14").options, 100u);
  EXPECT_EQ(scenario_by_name("lighttpd-1806-1807").options, 50u);
  for (const auto& s : java_scenarios()) EXPECT_EQ(s.options, 100u);
}

TEST(Scenarios, GzipOptimumIsFortyEight) {
  EXPECT_EQ(scenario_by_name("gzip-2009-08-16").optimum, 48u);
}

TEST(Scenarios, OptimaFallInThePapersRange) {
  for (const auto& family : {c_scenarios(), java_scenarios()}) {
    for (const auto& s : family) {
      EXPECT_GE(s.optimum, 11u) << s.name;
      EXPECT_LE(s.optimum, 271u) << s.name;
    }
  }
}

TEST(Scenarios, MultiEditDefectsExist) {
  // The §IV-G story needs defects single-edit tools cannot repair.
  EXPECT_GE(scenario_by_name("libtiff-2005-12-14").min_repair_edits, 2u);
  EXPECT_GE(scenario_by_name("Closure13").min_repair_edits, 2u);
}

TEST(ScenarioByName, ThrowsOnUnknown) {
  EXPECT_THROW(scenario_by_name("not-a-scenario"), std::invalid_argument);
}

TEST(CountForOption, SpansOneToMaxMonotonically) {
  const auto spec = scenario_by_name("Chart26");  // k=100, optimum 60
  EXPECT_EQ(spec.count_for_option(0), 1u);
  const std::size_t last = spec.count_for_option(spec.options - 1);
  EXPECT_EQ(last, std::max<std::size_t>(4 * spec.optimum, spec.options));
  for (std::size_t i = 1; i < spec.options; ++i) {
    EXPECT_GE(spec.count_for_option(i), spec.count_for_option(i - 1));
  }
}

TEST(OptionSetFromSpec, ValuesAreValidAndPeakNearOptimum) {
  const auto spec = scenario_by_name("Chart26");
  const auto options = spec.option_set();
  EXPECT_EQ(options.size(), spec.options);
  EXPECT_EQ(options.name(), spec.name);
  for (const double v : options.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // The best option's mutation count sits near the calibrated optimum.
  const auto best_count = spec.count_for_option(options.best_option());
  EXPECT_NEAR(static_cast<double>(best_count),
              static_cast<double>(spec.optimum),
              0.35 * static_cast<double>(spec.optimum) + 4.0);
}

TEST(OptionSetFromSpec, JavaScenariosDifferInDistribution) {
  // Same k, different value distributions (§IV-A).
  const auto a = scenario_by_name("Math8").option_set();
  const auto b = scenario_by_name("Math80").option_set();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_NE(a.best_option(), b.best_option());
}

TEST(OptionSetFromSpec, IsDeterministic) {
  const auto a = scenario_by_name("units").option_set();
  const auto b = scenario_by_name("units").option_set();
  EXPECT_TRUE(std::equal(a.values().begin(), a.values().end(),
                         b.values().begin()));
}

}  // namespace
}  // namespace mwr::datasets
