// Cross-dispatch bit-identity suite for the SoA weight kernels
// (DESIGN.md §12): every kernel must produce bit-for-bit identical results
// under forced-scalar and runtime (AVX2 when available) dispatch, across
// the Fenwick hybrid threshold (k = 127 / 128 / 129), odd and remainder
// lane counts, and Table-II scale (k = 2^14).  On a machine without AVX2
// both tables are the scalar one and the comparisons hold trivially — the
// suite is then re-run under MWR_FORCE_SCALAR=1 in CI so at least one
// configured lane exercises each side.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/exp3_mwu.hpp"
#include "core/mwu.hpp"
#include "core/standard_mwu.hpp"
#include "util/fenwick_sampler.hpp"
#include "util/rng.hpp"
#include "util/simd/weight_kernels.hpp"

namespace mwr {
namespace {

namespace simd = util::simd;

// The sweep: 1 (degenerate), odd/remainder lane counts below and around
// the 4- and 8-wide vector strides, the Fenwick linear/descent threshold
// (kLinearCutoff = 128) on both sides, and Table-II scale.
const std::size_t kSizes[] = {1,  2,  3,   5,   7,   8,    9,
                              13, 31, 32,  33,  127, 128,  129,
                              255, 257, std::size_t{1} << 14};

bool env_forces_scalar() {
  const char* env = std::getenv("MWR_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// Restores the environment-selected dispatch on scope exit, so this suite
/// never leaks a forced mode into other tests in the same binary (the CI
/// forced-scalar lane relies on that mode surviving the whole run).
struct DispatchRestore {
  ~DispatchRestore() { simd::force_scalar_for_testing(env_forces_scalar()); }
};

struct Tables {
  simd::WeightKernels scalar;
  simd::WeightKernels dispatched;
};

Tables tables() {
  simd::force_scalar_for_testing(true);
  const simd::WeightKernels scalar = simd::active();
  simd::force_scalar_for_testing(false);
  const simd::WeightKernels dispatched = simd::active();
  return {scalar, dispatched};
}

std::vector<double> random_weights(std::size_t n, std::uint64_t seed) {
  util::RngStream rng(seed);
  std::vector<double> w(n);
  for (auto& v : w) v = 0.25 + rng.uniform();
  return w;
}

::testing::AssertionResult bitwise_equal(const std::vector<double>& a,
                                         const std::vector<double>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size mismatch";
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0)
        return ::testing::AssertionFailure()
               << "first divergence at index " << i << ": " << a[i]
               << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(WeightKernelsIdentity, PowUpdate) {
  DispatchRestore restore;
  const Tables t = tables();
  for (const std::size_t n : kSizes) {
    std::vector<double> exps(n, 0.0);
    for (std::size_t i = 0; i < n; i += 5) {
      exps[i] = 1.0 + static_cast<double>(i % 3);
    }
    std::vector<double> a = random_weights(n, 11 + n);
    std::vector<double> b = a;
    t.scalar.pow_update(a.data(), exps.data(), n, 1.05);
    t.dispatched.pow_update(b.data(), exps.data(), n, 1.05);
    EXPECT_TRUE(bitwise_equal(a, b)) << "pow_update n=" << n;
  }
}

TEST(WeightKernelsIdentity, ExpUpdate) {
  DispatchRestore restore;
  const Tables t = tables();
  for (const std::size_t n : kSizes) {
    std::vector<double> exps(n, 0.0);
    for (std::size_t i = 0; i < n; i += 3) {
      exps[i] = 0.01 * static_cast<double>(1 + i % 7);
    }
    std::vector<double> a = random_weights(n, 23 + n);
    std::vector<double> b = a;
    t.scalar.exp_update(a.data(), exps.data(), n);
    t.dispatched.exp_update(b.data(), exps.data(), n);
    EXPECT_TRUE(bitwise_equal(a, b)) << "exp_update n=" << n;
  }
}

TEST(WeightKernelsIdentity, MaxReduceAndArgmax) {
  DispatchRestore restore;
  const Tables t = tables();
  for (const std::size_t n : kSizes) {
    std::vector<double> w = random_weights(n, 37 + n);
    // Plant an exact duplicate of the maximum so argmax's first-occurrence
    // tie-break is actually exercised (and again at the last slot).
    const std::size_t mi = static_cast<std::size_t>(
        std::max_element(w.begin(), w.end()) - w.begin());
    if (n >= 3) {
      w[n / 2] = w[mi];
      w[n - 1] = w[mi];
    }
    const std::size_t expected = static_cast<std::size_t>(
        std::max_element(w.begin(), w.end()) - w.begin());
    EXPECT_EQ(t.scalar.max_reduce(w.data(), n),
              t.dispatched.max_reduce(w.data(), n))
        << "max_reduce n=" << n;
    EXPECT_EQ(t.scalar.argmax(w.data(), n), expected) << "argmax n=" << n;
    EXPECT_EQ(t.dispatched.argmax(w.data(), n), expected)
        << "argmax n=" << n;
  }
}

TEST(WeightKernelsIdentity, ScaleDivide) {
  DispatchRestore restore;
  const Tables t = tables();
  for (const std::size_t n : kSizes) {
    std::vector<double> a = random_weights(n, 41 + n);
    std::vector<double> b = a;
    t.scalar.scale_divide(a.data(), n, 1.7);
    t.dispatched.scale_divide(b.data(), n, 1.7);
    EXPECT_TRUE(bitwise_equal(a, b)) << "scale_divide n=" << n;
  }
}

TEST(WeightKernelsIdentity, MaterializeAffine) {
  DispatchRestore restore;
  const Tables t = tables();
  for (const std::size_t n : kSizes) {
    const std::vector<double> src = random_weights(n, 43 + n);
    const double denom = simd::sum_seq(src.data(), n);
    std::vector<double> a(n, -1.0);
    std::vector<double> b(n, -1.0);
    t.scalar.materialize_affine(a.data(), src.data(), n, 0.95, denom, 0.003);
    t.dispatched.materialize_affine(b.data(), src.data(), n, 0.95, denom,
                                    0.003);
    EXPECT_TRUE(bitwise_equal(a, b)) << "materialize_affine n=" << n;
  }
}

TEST(WeightKernelsIdentity, MaterializeCounts) {
  DispatchRestore restore;
  const Tables t = tables();
  for (const std::size_t n : kSizes) {
    std::vector<std::uint32_t> counts(n);
    for (std::size_t i = 0; i < n; ++i) {
      counts[i] = static_cast<std::uint32_t>((i * 2654435761u) % 100003u);
    }
    std::vector<double> a(n, -1.0);
    std::vector<double> b(n, -1.0);
    t.scalar.materialize_counts(a.data(), counts.data(), n, 513.0);
    t.dispatched.materialize_counts(b.data(), counts.data(), n, 513.0);
    EXPECT_TRUE(bitwise_equal(a, b)) << "materialize_counts n=" << n;
  }
}

TEST(WeightKernelsIdentity, MaskOrGather) {
  DispatchRestore restore;
  const Tables t = tables();
  for (const std::size_t n : kSizes) {
    // A mask table larger than any index sweep, plus an index sequence with
    // repeats and out-of-order jumps — the probe-wave access pattern.
    const std::size_t table = 2048;
    std::vector<std::uint64_t> masks(table);
    util::RngStream rng(59 + n);
    for (auto& m : masks) m = rng.next_u64();
    std::vector<std::uint32_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) {
      idx[i] = static_cast<std::uint32_t>((i * 997 + 13) % table);
    }
    std::uint64_t expected = 0;
    for (const std::uint32_t j : idx) expected |= masks[j];
    EXPECT_EQ(t.scalar.mask_or_gather(masks.data(), idx.data(), n), expected)
        << "mask_or_gather n=" << n;
    EXPECT_EQ(t.dispatched.mask_or_gather(masks.data(), idx.data(), n),
              expected)
        << "mask_or_gather n=" << n;
  }
}

TEST(WeightKernelsIdentity, PopcountAnd) {
  DispatchRestore restore;
  const Tables t = tables();
  for (const std::size_t n : kSizes) {
    std::vector<std::uint64_t> a(n);
    std::vector<std::uint64_t> b(n);
    util::RngStream rng(61 + n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.next_u64();
      b[i] = rng.next_u64();
    }
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t word = a[i] & b[i];
      for (; word != 0; word &= word - 1) ++expected;
    }
    EXPECT_EQ(t.scalar.popcount_and(a.data(), b.data(), n), expected)
        << "popcount_and n=" << n;
    EXPECT_EQ(t.dispatched.popcount_and(a.data(), b.data(), n), expected)
        << "popcount_and n=" << n;
  }
}

TEST(WeightKernelsIdentity, FenwickRebuild) {
  DispatchRestore restore;
  const Tables t = tables();
  for (const std::size_t n : kSizes) {
    for (const double divisor : {1.0, 1.7}) {
      std::vector<double> wa = random_weights(n, 47 + n);
      std::vector<double> wb = wa;
      std::vector<double> ta(n + 1, -7.0);  // prior contents must be ignored
      std::vector<double> tb(n + 1, 99.0);
      const double total_a =
          t.scalar.fenwick_rebuild(wa.data(), ta.data(), n, divisor);
      const double total_b =
          t.dispatched.fenwick_rebuild(wb.data(), tb.data(), n, divisor);
      EXPECT_EQ(total_a, total_b) << "fenwick total n=" << n;
      EXPECT_TRUE(bitwise_equal(wa, wb)) << "fenwick weights n=" << n;
      EXPECT_TRUE(bitwise_equal(ta, tb)) << "fenwick tree n=" << n;
      // And the strict left-to-right fold contract holds on both.
      EXPECT_EQ(total_a, simd::sum_seq(wa.data(), n)) << "fold n=" << n;
    }
  }
}

// --- whole-trajectory identity: learners and sampler across dispatch ----

template <typename MakeStrategy>
void expect_identical_trajectories(std::size_t k, MakeStrategy&& make) {
  // One full bandit run per dispatch mode: same seeds, same reward rule.
  // Weights, probabilities, draw sequences, and the preferred option must
  // agree bit-for-bit at every cycle.
  const auto run = [&](bool force_scalar) {
    simd::force_scalar_for_testing(force_scalar);
    auto mwu = make();
    mwu->init();
    util::RngStream rng(0xBADDECAF ^ k);
    std::vector<std::vector<std::size_t>> draws;
    std::vector<std::vector<double>> probs;
    std::vector<std::size_t> best;
    for (int cycle = 0; cycle < 8; ++cycle) {
      const auto options = mwu->sample(rng);
      std::vector<double> rewards(options.size());
      for (std::size_t j = 0; j < options.size(); ++j) {
        rewards[j] = options[j] * 2 < k ? 1.0 : 0.0;
      }
      mwu->update(options, rewards, rng);
      draws.push_back(options);
      probs.push_back(mwu->probabilities());
      best.push_back(mwu->best_option());
    }
    return std::tuple(draws, probs, best);
  };
  const auto scalar = run(true);
  const auto dispatched = run(false);
  EXPECT_EQ(std::get<0>(scalar), std::get<0>(dispatched))
      << "draw sequences diverged at k=" << k;
  ASSERT_EQ(std::get<1>(scalar).size(), std::get<1>(dispatched).size());
  for (std::size_t c = 0; c < std::get<1>(scalar).size(); ++c) {
    EXPECT_TRUE(
        bitwise_equal(std::get<1>(scalar)[c], std::get<1>(dispatched)[c]))
        << "probabilities diverged at k=" << k << " cycle " << c;
  }
  EXPECT_EQ(std::get<2>(scalar), std::get<2>(dispatched))
      << "best_option diverged at k=" << k;
}

TEST(DispatchTrajectoryIdentity, StandardMwu) {
  DispatchRestore restore;
  for (const std::size_t k :
       {std::size_t{1}, std::size_t{127}, std::size_t{128}, std::size_t{129},
        std::size_t{1} << 14}) {
    core::MwuConfig config;
    config.num_options = k;
    config.num_agents = 16;
    expect_identical_trajectories(
        k, [&] { return std::make_unique<core::StandardMwu>(config); });
  }
}

TEST(DispatchTrajectoryIdentity, StandardMwuFullInformation) {
  DispatchRestore restore;
  for (const std::size_t k : {std::size_t{127}, std::size_t{129}}) {
    core::MwuConfig config;
    config.num_options = k;
    config.num_agents = 16;
    config.full_information = true;
    expect_identical_trajectories(
        k, [&] { return std::make_unique<core::StandardMwu>(config); });
  }
}

TEST(DispatchTrajectoryIdentity, Exp3Mwu) {
  DispatchRestore restore;
  for (const std::size_t k :
       {std::size_t{1}, std::size_t{127}, std::size_t{128}, std::size_t{129},
        std::size_t{1} << 14}) {
    core::MwuConfig config;
    config.num_options = k;
    config.num_agents = 16;
    expect_identical_trajectories(
        k, [&] { return std::make_unique<core::Exp3Mwu>(config); });
  }
}

TEST(DispatchTrajectoryIdentity, FenwickSamplerDraws) {
  DispatchRestore restore;
  for (const std::size_t k :
       {std::size_t{1}, std::size_t{127}, std::size_t{128}, std::size_t{129},
        std::size_t{1} << 14}) {
    const std::vector<double> weights = random_weights(k, 53 + k);
    const auto draw_sequence = [&](bool force_scalar) {
      simd::force_scalar_for_testing(force_scalar);
      util::FenwickSampler sampler(weights);
      // Exercise the fused renormalize path too: divide by the max, which
      // must leave the draw trajectory a pure function of the weights.
      sampler.rebuild_in_place(simd::active().max_reduce(
          sampler.raw_weights().data(), sampler.size()));
      util::RngStream rng(0xFEED ^ k);
      std::vector<std::size_t> draws(512);
      for (auto& d : draws) d = sampler.sample(rng);
      return draws;
    };
    EXPECT_EQ(draw_sequence(true), draw_sequence(false))
        << "sampler draws diverged at k=" << k;
  }
}

}  // namespace
}  // namespace mwr
