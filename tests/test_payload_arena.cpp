// Unit tests for parallel/payload_arena and the arena-backed PayloadVec
// representation: bump/chunk mechanics, the outstanding-count gate on
// try_reset, value semantics of arena payloads, and the communicator
// integration (send_copy fan-out + rewind at cycle-close barriers).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "parallel/comm.hpp"
#include "parallel/mailbox.hpp"
#include "parallel/payload_arena.hpp"

namespace mwr::parallel {
namespace {

std::vector<double> iota_payload(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i + 1);
  return v;
}

TEST(PayloadArena, BumpsWithinOneChunk) {
  PayloadArena arena(/*chunk_doubles=*/64);
  double* a = arena.allocate(16);
  double* b = arena.allocate(16);
  EXPECT_EQ(b, a + 16);  // same chunk, bump-adjacent
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.outstanding(), 32u);
  arena.release(16);
  arena.release(16);
  EXPECT_EQ(arena.outstanding(), 0u);
}

TEST(PayloadArena, GrowsNewChunkWhenFull) {
  PayloadArena arena(/*chunk_doubles=*/32);
  (void)arena.allocate(24);
  double* b = arena.allocate(24);  // does not fit the 8 remaining doubles
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(arena.chunk_count(), 2u);
  arena.release(24);
  arena.release(24);
}

TEST(PayloadArena, OversizeAllocationGetsDedicatedChunk) {
  PayloadArena arena(/*chunk_doubles=*/32);
  double* big = arena.allocate(1000);
  ASSERT_NE(big, nullptr);
  big[999] = 1.0;  // the whole span is writable
  EXPECT_EQ(arena.chunk_count(), 1u);
  arena.release(1000);
  EXPECT_TRUE(arena.try_reset());
}

TEST(PayloadArena, TryResetRefusesWhileOutstanding) {
  PayloadArena arena(/*chunk_doubles=*/32);
  (void)arena.allocate(8);
  EXPECT_FALSE(arena.try_reset());
  arena.release(8);
  EXPECT_TRUE(arena.try_reset());
  EXPECT_TRUE(arena.try_reset());  // idempotent when drained
}

TEST(PayloadArena, ResetReusesRetainedChunkStorage) {
  PayloadArena arena(/*chunk_doubles=*/32);
  double* first = arena.allocate(8);
  arena.release(8);
  ASSERT_TRUE(arena.try_reset());
  double* again = arena.allocate(8);
  EXPECT_EQ(again, first);  // rewound to the start of the retained chunk
  EXPECT_EQ(arena.chunk_count(), 1u);
  arena.release(8);
}

TEST(PayloadArena, RejectsZeroChunkSize) {
  EXPECT_THROW(PayloadArena arena(0), std::invalid_argument);
}

TEST(PayloadVecArena, SmallPayloadStaysInlineAndSkipsArena) {
  auto arena = std::make_shared<PayloadArena>();
  const std::vector<double> v = iota_payload(PayloadVec::kInlineDoubles);
  PayloadVec p(v, arena);
  EXPECT_FALSE(p.arena_backed());
  EXPECT_FALSE(p.spilled());
  EXPECT_EQ(arena->outstanding(), 0u);
  EXPECT_EQ(std::move(p).to_vector(), v);
}

TEST(PayloadVecArena, LargePayloadIsArenaBackedAndReleasesOnDestruction) {
  auto arena = std::make_shared<PayloadArena>();
  const std::vector<double> v = iota_payload(32);
  {
    PayloadVec p(v, arena);
    EXPECT_TRUE(p.arena_backed());
    EXPECT_FALSE(p.spilled());  // arena-backed, not heap-spilled
    EXPECT_EQ(p.size(), 32u);
    EXPECT_EQ(arena->outstanding(), 32u);
    EXPECT_EQ(p.to_vector(), v);
    EXPECT_FALSE(arena->try_reset());  // p still holds its doubles
  }
  EXPECT_EQ(arena->outstanding(), 0u);
  EXPECT_TRUE(arena->try_reset());
}

TEST(PayloadVecArena, MoveTransfersOwnershipWithoutDoubleRelease) {
  auto arena = std::make_shared<PayloadArena>();
  const std::vector<double> v = iota_payload(16);
  PayloadVec a(v, arena);
  PayloadVec b(std::move(a));
  EXPECT_TRUE(b.arena_backed());
  EXPECT_EQ(arena->outstanding(), 16u);  // exactly one live allocation
  PayloadVec c;
  c = std::move(b);
  EXPECT_EQ(arena->outstanding(), 16u);
  EXPECT_EQ(c.to_vector(), v);
  c = PayloadVec{};  // move-assign over the arena payload releases it
  EXPECT_EQ(arena->outstanding(), 0u);
}

TEST(PayloadVecArena, CopyIsDeepAndArenaFree) {
  auto arena = std::make_shared<PayloadArena>();
  const std::vector<double> v = iota_payload(16);
  PayloadVec a(v, arena);
  PayloadVec b(a);
  EXPECT_FALSE(b.arena_backed());
  EXPECT_TRUE(b.spilled());  // the copy owns a heap vector
  EXPECT_EQ(arena->outstanding(), 16u);  // only the original counts
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(b.to_vector(), v);
}

TEST(PayloadVecArena, ArenaOutlivesWorldViaSharedPtr) {
  // A payload that escapes its arena's usual owner must stay valid: the
  // shared_ptr inside the PayloadVec keeps the storage alive.
  PayloadVec escaped;
  {
    auto arena = std::make_shared<PayloadArena>();
    escaped = PayloadVec(iota_payload(16), arena);
  }
  EXPECT_TRUE(escaped.arena_backed());
  EXPECT_EQ(escaped.to_vector(), iota_payload(16));
}

TEST(PayloadVecArena, MailboxRoundTripPreservesValues) {
  auto arena = std::make_shared<PayloadArena>();
  Mailbox box;
  box.push({2, 7, PayloadVec(iota_payload(24), arena)});
  EXPECT_FALSE(arena->try_reset());  // parked in the queue
  const Message m = box.recv();
  EXPECT_EQ(m.source, 2);
  EXPECT_TRUE(m.payload.arena_backed());
  EXPECT_EQ(m.payload.to_vector(), iota_payload(24));
}

TEST(CommArena, BroadcastFanOutUsesArenaAndRewindsAtCycleClose) {
  CommWorld world(4);
  const std::vector<double> payload = iota_payload(32);
  world.run([&](Comm& comm) {
    for (int cycle = 0; cycle < 3; ++cycle) {
      const std::vector<double> got = comm.broadcast(0, payload);
      ASSERT_EQ(got, payload);
      comm.barrier_close_cycle();
    }
  });
  // Every cycle's payloads were consumed before the close, so the final
  // close rewound the arena completely.
  EXPECT_EQ(world.payload_arena()->outstanding(), 0u);
  EXPECT_EQ(world.payload_arena()->chunk_count(), 1u);
}

TEST(CommArena, SendCopyMatchesSendTrajectories) {
  // send_copy must be observationally identical to send() with a vector
  // copy: same values, same per-channel ordering, same congestion counts.
  CommWorld world(3);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> v = iota_payload(16);
      for (int r = 1; r < comm.size(); ++r) {
        comm.send_copy(r, 5, v);
        comm.send(r, 5, std::vector<double>(v));
      }
    } else {
      const std::vector<double> first = comm.recv(0, 5).payload;
      const std::vector<double> second = comm.recv(0, 5).payload;
      ASSERT_EQ(first, second);  // arena copy delivered before vector copy
    }
    comm.barrier_close_cycle();
  });
  // Each non-root absorbed exactly two tracked messages this cycle.
  EXPECT_DOUBLE_EQ(world.congestion().max_per_cycle().max(), 2.0);
}

TEST(CommArena, TreeAllreduceWithArenaBcastStaysCorrect) {
  CommWorld world(8);
  world.run([&](Comm& comm) {
    std::vector<double> mine(40, static_cast<double>(comm.rank() + 1));
    const std::vector<double> sum = comm.allreduce_sum_tree(mine);
    ASSERT_EQ(sum.size(), 40u);
    for (const double s : sum) ASSERT_DOUBLE_EQ(s, 36.0);  // 1+2+...+8
    comm.barrier_close_cycle();
  });
  EXPECT_EQ(world.payload_arena()->outstanding(), 0u);
}

}  // namespace
}  // namespace mwr::parallel
