// Unit + integration tests for apr/mwrepair: the arm grid, the Fig 6 loop,
// early termination, reward modes, and the end-to-end pipeline.
#include <gtest/gtest.h>

#include "apr/mwrepair.hpp"

namespace mwr::apr {
namespace {

datasets::ScenarioSpec easy_spec() {
  datasets::ScenarioSpec spec;
  spec.name = "easy";
  spec.statements = 2000;
  spec.tests = 15;
  spec.coverage = 0.7;
  spec.safe_rate = 0.5;
  spec.repair_rate = 0.02;
  spec.optimum = 30;
  spec.min_repair_edits = 1;
  spec.seed = 51;
  return spec;
}

TEST(MwRepair, RejectsDegenerateConfig) {
  MwRepairConfig config;
  config.arms = 0;
  EXPECT_THROW(MwRepair{config}, std::invalid_argument);
  config = MwRepairConfig{};
  config.max_count = 0;
  EXPECT_THROW(MwRepair{config}, std::invalid_argument);
}

TEST(MwRepair, ArmGridSpansOneToMaxCount) {
  MwRepairConfig config;
  config.arms = 16;
  config.max_count = 200;
  const MwRepair repair(config);
  EXPECT_EQ(repair.count_for_arm(0), 1u);
  EXPECT_EQ(repair.count_for_arm(15), 200u);
  // Geometric grid: monotone, with several arms in every decade.
  for (std::size_t arm = 1; arm < 16; ++arm) {
    EXPECT_GE(repair.count_for_arm(arm), repair.count_for_arm(arm - 1));
  }
  EXPECT_LT(repair.count_for_arm(8), 50u);  // log density at small counts
}

TEST(MwRepair, ArmsClampToMaxCount) {
  MwRepairConfig config;
  config.arms = 100;
  config.max_count = 10;
  const MwRepair repair(config);
  EXPECT_EQ(repair.config().arms, 10u);
  EXPECT_EQ(repair.count_for_arm(9), 10u);
}

TEST(MwRepair, SingleArmMeansMaxCount) {
  MwRepairConfig config;
  config.arms = 1;
  config.max_count = 7;
  const MwRepair repair(config);
  EXPECT_EQ(repair.count_for_arm(0), 7u);
}

TEST(MwRepair, ThrowsOnEmptyPool) {
  const ProgramModel program(easy_spec());
  const TestOracle oracle(program);
  const MutationPool empty_pool;
  const MwRepair repair(MwRepairConfig{});
  EXPECT_THROW((void)repair.run(oracle, empty_pool), std::invalid_argument);
}

TEST(MwRepair, RepairsAnEasyScenarioAndTerminatesEarly) {
  const ProgramModel program(easy_spec());
  const TestOracle oracle(program);
  PoolConfig pool_config;
  pool_config.target_size = 800;
  pool_config.seed = 1;
  const auto pool = MutationPool::precompute(oracle, pool_config);

  MwRepairConfig config;
  config.agents = 16;
  config.max_iterations = 300;
  config.seed = 2;
  const MwRepair repair(config);
  const auto outcome = repair.run(oracle, pool);
  ASSERT_TRUE(outcome.repaired);
  EXPECT_FALSE(outcome.patch.empty());
  EXPECT_LT(outcome.iterations, 300u);
  EXPECT_GT(outcome.probes, 0u);
  // The returned patch really is a repair.
  const Evaluation check = oracle.evaluate(outcome.patch);
  EXPECT_TRUE(check.is_repair());
}

TEST(MwRepair, ReturnsNoRepairWhenTheBugIsUnreachable) {
  auto spec = easy_spec();
  spec.min_repair_edits = 100000;
  const ProgramModel program(spec);
  const TestOracle oracle(program);
  PoolConfig pool_config;
  pool_config.target_size = 300;
  pool_config.seed = 3;
  const auto pool = MutationPool::precompute(oracle, pool_config);

  MwRepairConfig config;
  config.agents = 8;
  config.max_iterations = 30;
  config.seed = 4;
  const MwRepair repair(config);
  const auto outcome = repair.run(oracle, pool);
  EXPECT_FALSE(outcome.repaired);
  EXPECT_TRUE(outcome.patch.empty());
  EXPECT_EQ(outcome.iterations, 30u);
  EXPECT_EQ(outcome.probes, 30u * 8u);
  EXPECT_EQ(outcome.arm_probabilities.size(), repair.config().arms);
}

TEST(MwRepair, ProbesAreCountedOnTheOracle) {
  const ProgramModel program(easy_spec());
  const TestOracle oracle(program);
  PoolConfig pool_config;
  pool_config.target_size = 300;
  pool_config.seed = 5;
  const auto pool = MutationPool::precompute(oracle, pool_config);
  const std::uint64_t before = oracle.suite_runs();

  MwRepairConfig config;
  config.agents = 8;
  config.max_iterations = 50;
  config.seed = 6;
  const MwRepair repair(config);
  const auto outcome = repair.run(oracle, pool);
  EXPECT_EQ(oracle.suite_runs() - before, outcome.probes);
}

TEST(MwRepair, IsDeterministicPerSeed) {
  const ProgramModel program(easy_spec());
  const TestOracle oracle(program);
  PoolConfig pool_config;
  pool_config.target_size = 400;
  pool_config.seed = 7;
  const auto pool = MutationPool::precompute(oracle, pool_config);
  MwRepairConfig config;
  config.seed = 8;
  const MwRepair repair(config);
  const auto a = repair.run(oracle, pool);
  const auto b = repair.run(oracle, pool);
  EXPECT_EQ(a.repaired, b.repaired);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(MwRepair, WorksWithEveryMwuBackend) {
  const ProgramModel program(easy_spec());
  const TestOracle oracle(program);
  PoolConfig pool_config;
  pool_config.target_size = 600;
  pool_config.seed = 9;
  const auto pool = MutationPool::precompute(oracle, pool_config);
  for (const auto kind :
       {core::MwuKind::kStandard, core::MwuKind::kSlate,
        core::MwuKind::kDistributed}) {
    MwRepairConfig config;
    config.mwu = kind;
    config.arms = 16;
    config.max_iterations = 200;
    config.seed = 10;
    const MwRepair repair(config);
    const auto outcome = repair.run(oracle, pool);
    EXPECT_TRUE(outcome.repaired) << core::to_string(kind);
  }
}

TEST(MwRepair, ParallelEvaluationIsBitIdenticalToSerial) {
  // Patch draws and acceptance draws happen before the fan-out, so the
  // outcome must not depend on eval_threads.
  const ProgramModel program(easy_spec());
  const TestOracle oracle(program);
  PoolConfig pool_config;
  pool_config.target_size = 500;
  pool_config.seed = 13;
  const auto pool = MutationPool::precompute(oracle, pool_config);

  MwRepairConfig config;
  config.agents = 16;
  config.max_iterations = 120;
  config.seed = 14;
  config.eval_threads = 1;
  const MwRepair serial(config);
  const auto a = serial.run(oracle, pool);
  config.eval_threads = 4;
  const MwRepair parallel_eval(config);
  const auto b = parallel_eval.run(oracle, pool);

  EXPECT_EQ(a.repaired, b.repaired);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.patch, b.patch);
  EXPECT_EQ(a.preferred_count, b.preferred_count);
}

TEST(RepairScenario, EndToEndPipelineRepairsAndAccounts) {
  MwRepairConfig repair_config;
  repair_config.agents = 16;
  repair_config.max_iterations = 300;
  repair_config.seed = 11;
  PoolConfig pool_config;
  pool_config.target_size = 800;
  pool_config.seed = 12;
  const auto outcome =
      repair_scenario(easy_spec(), repair_config, pool_config);
  EXPECT_TRUE(outcome.repair.repaired);
  EXPECT_EQ(outcome.pool_size, 800u);
  EXPECT_GE(outcome.precompute_attempts, outcome.pool_size);
  EXPECT_EQ(outcome.total_suite_runs,
            outcome.precompute_attempts + outcome.repair.probes);
}

}  // namespace
}  // namespace mwr::apr
