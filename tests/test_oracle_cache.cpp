// Oracle memoization golden tests: the cached TestOracle must be
// bit-identical to the uncached reference path on every query — including
// the localized-relevance branch and swap-orientation corner — and its
// cache traffic must surface through the obs counters / metrics JSON.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apr/mutation_pool.hpp"
#include "apr/test_oracle.hpp"
#include "datasets/scenario.hpp"
#include "obs/registry.hpp"

namespace mwr::apr {
namespace {

datasets::ScenarioSpec cache_spec(bool localized) {
  datasets::ScenarioSpec spec;
  spec.name = localized ? "cache-localized" : "cache-global";
  spec.options = 500;
  spec.statements = 900;
  spec.tests = 24;
  spec.coverage = 0.8;
  spec.safe_rate = 0.5;
  spec.repair_rate = 0.04;
  spec.optimum = 20;
  spec.min_repair_edits = 1;
  spec.seed = 314;
  spec.relevance_localized = localized;
  return spec;
}

TEST(OracleCache, EvaluateBitIdenticalOnRandomPatches) {
  for (const bool localized : {false, true}) {
    const ProgramModel program(cache_spec(localized));
    const TestOracle uncached(program, /*enable_cache=*/false);
    const TestOracle cached(program, /*enable_cache=*/true);
    ASSERT_FALSE(uncached.cache_enabled());
    ASSERT_TRUE(cached.cache_enabled());
    util::RngStream rng(9);
    for (int trial = 0; trial < 300; ++trial) {
      const auto patch =
          random_patch(program, 1 + rng.uniform_index(12), rng);
      const Evaluation a = uncached.evaluate(patch);
      const Evaluation b = cached.evaluate(patch);
      EXPECT_EQ(a, b) << "localized=" << localized << " trial=" << trial;
      // Repeat once more: the second evaluation is served from the cache.
      EXPECT_EQ(a, cached.evaluate(patch));
    }
  }
}

TEST(OracleCache, PrimedPooledProbesBitIdentical) {
  const ProgramModel program(cache_spec(true));
  const TestOracle uncached(program, false);
  const TestOracle cached(program, true);

  PoolConfig config;
  config.target_size = 300;
  config.seed = 5;
  const auto pool = MutationPool::precompute(uncached, config);
  ASSERT_GT(pool.size(), 0u);
  cached.prime_cache(pool.mutations());

  util::RngStream rng(21);
  for (int trial = 0; trial < 400; ++trial) {
    const auto patch =
        sample_from_pool(pool.mutations(), 2 + rng.uniform_index(30), rng);
    EXPECT_EQ(uncached.evaluate(patch), cached.evaluate(patch));
  }
}

TEST(OracleCache, WaveEvaluatePooledBitIdentical) {
  // The probe wave's eager fast path (prime_wave + evaluate_pooled) must
  // agree bit-for-bit with the uncached reference on index-sampled pool
  // patches — including the localized-coverage branch — and the indexed
  // sampler must consume the RNG exactly like sample_from_pool.
  for (const bool localized : {false, true}) {
    const ProgramModel program(cache_spec(localized));
    const TestOracle uncached(program, false);
    const TestOracle waved(program, true);

    PoolConfig config;
    config.target_size = 300;
    config.seed = 5;
    const auto pool = MutationPool::precompute(uncached, config);
    ASSERT_GT(pool.size(), 0u);
    waved.prime_wave(pool.mutations());
    ASSERT_TRUE(waved.wave_ready());

    util::RngStream rng_ref(33);
    util::RngStream rng_idx(33);
    std::vector<std::uint32_t> indices;
    for (int trial = 0; trial < 400; ++trial) {
      const std::size_t size = 2 + rng_ref.uniform_index(30);
      ASSERT_EQ(size, 2 + rng_idx.uniform_index(30));
      const auto patch = sample_from_pool(pool.mutations(), size, rng_ref);
      sample_from_pool_indexed(pool.size(), size, rng_idx, indices);
      // Indexed draws name the identical canonical patch...
      ASSERT_EQ(patch.size(), indices.size());
      for (std::size_t i = 0; i < indices.size(); ++i) {
        ASSERT_EQ(patch[i], pool.mutations()[indices[i]])
            << "localized=" << localized << " trial=" << trial;
      }
      // ...and both RNG streams stay in lockstep.
      ASSERT_EQ(rng_ref.state(), rng_idx.state());
      EXPECT_EQ(uncached.evaluate(patch), waved.evaluate_pooled(indices))
          << "localized=" << localized << " trial=" << trial;
    }
  }
}

TEST(OracleCache, MixedPooledAndForeignMutationsBitIdentical) {
  const ProgramModel program(cache_spec(false));
  const TestOracle uncached(program, false);
  const TestOracle cached(program, true);
  PoolConfig config;
  config.target_size = 100;
  config.seed = 8;
  const auto pool = MutationPool::precompute(uncached, config);
  cached.prime_cache(pool.mutations());

  util::RngStream rng(33);
  for (int trial = 0; trial < 300; ++trial) {
    // Half pooled, half fresh random mutations (some unsafe, none primed).
    Patch patch = sample_from_pool(pool.mutations(), 6, rng);
    for (int extra = 0; extra < 6; ++extra) {
      patch.push_back(random_mutation(program, rng));
    }
    canonicalize(patch);
    EXPECT_EQ(uncached.evaluate(patch), cached.evaluate(patch));
  }
}

TEST(OracleCache, SwapOrientationDoesNotLeakThroughTheCache) {
  // A swap's key orders its operands, but localized relevance depends on
  // the concrete target.  Cache one orientation, query the other: both
  // oracles must still agree on both orientations.
  const ProgramModel program(cache_spec(true));
  const TestOracle uncached(program, false);
  const TestOracle cached(program, true);
  const auto& covered = program.covered_statements();
  ASSERT_GE(covered.size(), 2u);
  util::RngStream rng(55);
  int disagreements = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = covered[rng.uniform_index(covered.size())];
    auto b = covered[rng.uniform_index(covered.size())];
    if (a == b) continue;
    const Mutation fwd{MutationKind::kSwap, a, b};
    const Mutation rev{MutationKind::kSwap, b, a};
    ASSERT_EQ(fwd.key(), rev.key());
    // Populate the cache with fwd first, then query rev.
    EXPECT_EQ(cached.is_repair_relevant(fwd), uncached.is_repair_relevant(fwd));
    EXPECT_EQ(cached.is_repair_relevant(rev), uncached.is_repair_relevant(rev));
    EXPECT_EQ(cached.is_safe(fwd), uncached.is_safe(fwd));
    if (uncached.is_repair_relevant(fwd) != uncached.is_repair_relevant(rev)) {
      ++disagreements;
    }
  }
  // The corner this guards: the two orientations genuinely can differ, so
  // a cache keyed only by the mutation key would be wrong.
  EXPECT_GT(disagreements, 0);
}

TEST(OracleCache, CountersTrackHitsAndAppearInMetricsJson) {
  auto& metrics = obs::MetricsRegistry::global();
  const std::uint64_t hits_before =
      metrics.counter("oracle.mask_cache_hits").value();

  const ProgramModel program(cache_spec(false));
  const TestOracle cached(program, true);
  PoolConfig config;
  config.target_size = 120;
  config.seed = 13;
  const auto pool = MutationPool::precompute(cached, config);  // primes
  util::RngStream rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto patch = sample_from_pool(pool.mutations(), 8, rng);
    (void)cached.evaluate(patch);
  }
  const std::uint64_t hits_after =
      metrics.counter("oracle.mask_cache_hits").value();
  // 50 probes x 8 pooled mutations, all primed -> at least 400 mask hits.
  EXPECT_GE(hits_after - hits_before, 400u);
  // Warm pair probes must also show up.
  EXPECT_GT(metrics.counter("oracle.pair_cache_hits").value() +
                metrics.counter("oracle.pair_cache_misses").value(),
            0u);

  const std::string json = metrics.to_json_string();
  EXPECT_NE(json.find("oracle.mask_cache_hits"), std::string::npos);
  EXPECT_NE(json.find("oracle.mask_cache_misses"), std::string::npos);
  EXPECT_NE(json.find("oracle.pair_cache_hits"), std::string::npos);
}

TEST(OracleCache, SuiteRunAccountingUnchangedByCaching) {
  // Caching skips re-hashing, never suite-run accounting: both oracles
  // count one run per evaluate().
  const ProgramModel program(cache_spec(false));
  const TestOracle uncached(program, false);
  const TestOracle cached(program, true);
  util::RngStream rng(4);
  for (int trial = 0; trial < 25; ++trial) {
    const auto patch = random_patch(program, 5, rng);
    (void)uncached.evaluate(patch);
    (void)cached.evaluate(patch);
  }
  EXPECT_EQ(uncached.suite_runs(), 25u);
  EXPECT_EQ(cached.suite_runs(), 25u);
}

TEST(OracleCache, ParallelRevalidateMatchesSerial) {
  // Survivors of a pool revalidation are identical for any thread count.
  auto base = cache_spec(false);
  const ProgramModel program(base);
  const TestOracle oracle(program, true);
  PoolConfig config;
  config.target_size = 200;
  config.seed = 3;
  const auto pool = MutationPool::precompute(oracle, config);

  // Revalidate against a *grown* suite so some members actually drop.
  auto grown = base;
  grown.tests = base.tests + 8;
  const ProgramModel grown_program(grown);
  const TestOracle grown_oracle(grown_program, true);

  MutationPool serial = pool;
  MutationPool parallel = pool;
  const std::size_t dropped_serial = serial.revalidate(grown_oracle, 1);
  const std::size_t dropped_parallel = parallel.revalidate(grown_oracle, 4);
  EXPECT_EQ(dropped_serial, dropped_parallel);
  EXPECT_GT(dropped_serial, 0u);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.mutations()[i], parallel.mutations()[i]);
  }
}

}  // namespace
}  // namespace mwr::apr
