#!/usr/bin/env python3
"""Self-tests for tools/mwr_lint.py against the fixture corpus.

Each subtree under tests/lint_fixtures/bad/<rule>/ mirrors the src/
layout and must produce at least one finding of exactly that rule;
tests/lint_fixtures/good/ must lint clean while exercising suppressions,
masked prose, wrapper locking, and keyed-only unordered containers.

Run directly or via ctest (lint_selftest).
"""

import subprocess
import sys
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINTER = REPO_ROOT / "tools" / "mwr_lint.py"
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"

# Fixture directory name -> (expected rule id, minimum finding count).
BAD_CASES = {
    "nondeterministic-seed": ("nondeterministic-seed", 3),
    "wall-clock": ("wall-clock", 4),
    "thread-id": ("thread-id", 1),
    "pointer-hash": ("pointer-hash", 2),
    "unordered-iteration": ("unordered-iteration", 2),
    "naked-mutex": ("naked-mutex", 4),
    "raw-ipc": ("raw-ipc", 9),
    # The serve whitelist names exactly one file; a rogue socket anywhere
    # else in src/serve must still fail.
    "raw-ipc-serve": ("raw-ipc", 6),
    "raw-simd": ("raw-simd", 5),
    "bad-suppression": ("bad-suppression", 2),
}


def run_lint(root):
    return subprocess.run(
        [sys.executable, str(LINTER), "--root", str(root), "src"],
        capture_output=True,
        text=True,
        timeout=60,
    )


class BadFixturesFail(unittest.TestCase):
    """Every bad fixture tree must fail with its own rule (and no other)."""


def _make_bad_test(name, rule, min_count):
    def test(self):
        result = run_lint(FIXTURES / "bad" / name)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        findings = [
            line for line in result.stdout.splitlines() if ": error: [" in line
        ]
        matching = [f for f in findings if f"[{rule}]" in f]
        self.assertGreaterEqual(
            len(matching), min_count,
            f"expected >= {min_count} [{rule}] findings, got:\n"
            + result.stdout,
        )
        if name != "bad-suppression":
            # A bad fixture must not trip unrelated rules (rule isolation).
            foreign = [f for f in findings if f"[{rule}]" not in f]
            self.assertEqual(foreign, [], f"cross-rule noise:\n{foreign}")

    return test


for _name, (_rule, _count) in BAD_CASES.items():
    setattr(
        BadFixturesFail,
        "test_" + _name.replace("-", "_"),
        _make_bad_test(_name, _rule, _count),
    )


class GoodFixturesPass(unittest.TestCase):
    def test_good_tree_is_clean_and_counts_suppressions(self):
        result = run_lint(FIXTURES / "good")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("0 finding(s)", result.stdout)
        # suppressed.cpp carries exactly two justified suppressions; the
        # count must be surfaced so reviewers can ratchet it.
        self.assertIn("2 suppression(s)", result.stdout)


class CliBehaviour(unittest.TestCase):
    def test_missing_scan_path_is_a_usage_error(self):
        result = run_lint(FIXTURES / "bad")  # has no src/ directly under it
        self.assertEqual(result.returncode, 2)

    def test_list_rules_names_every_rule(self):
        result = subprocess.run(
            [sys.executable, str(LINTER), "--list-rules"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        self.assertEqual(result.returncode, 0)
        listed = set(result.stdout.split())
        for rule, _ in BAD_CASES.values():
            if rule != "bad-suppression":
                self.assertIn(rule, listed)


if __name__ == "__main__":
    unittest.main(verbosity=2)
