// Integration tests: the qualitative shape of Tables II-IV, asserted on a
// reduced configuration of the same harness the benches run.  These pin the
// paper's §IV-C/D/F findings as regression tests.
#include <gtest/gtest.h>

#include "costmodel/evaluation.hpp"

namespace mwr::costmodel {
namespace {

// One shared sweep for the whole suite (seeds=3, sizes to 256 keeps it a
// few seconds).
class TableShape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    EvalConfig config;
    config.seeds = 3;
    config.max_size = 256;
    config.master_seed = 20210525;
    cells_ = new std::vector<EvalCell>(run_evaluation(config));
  }
  static void TearDownTestSuite() {
    delete cells_;
    cells_ = nullptr;
  }
  static const std::vector<EvalCell>& cells() { return *cells_; }

 private:
  static std::vector<EvalCell>* cells_;
};

std::vector<EvalCell>* TableShape::cells_ = nullptr;

TEST_F(TableShape, SlateIsAlwaysTheMostExpensiveInCycles) {
  // §IV-C: "Slate ... is always the most expensive algorithm in terms of
  // number of iterations until convergence."
  for (std::size_t i = 0; i + 2 < cells().size(); i += 3) {
    const auto& standard = cells()[i];
    const auto& distributed = cells()[i + 1];
    const auto& slate = cells()[i + 2];
    EXPECT_GT(slate.iterations.mean(), standard.iterations.mean())
        << slate.dataset;
    if (!distributed.intractable) {
      EXPECT_GT(slate.iterations.mean(), distributed.iterations.mean())
          << slate.dataset;
    }
  }
}

TEST_F(TableShape, DistributedConvergesFastestOnRandomScenarios) {
  // §IV-C: "For all five random scenarios, Distributed converges most
  // quickly."
  for (std::size_t i = 0; i + 2 < cells().size(); i += 3) {
    if (cells()[i].family != "random") continue;
    EXPECT_LT(cells()[i + 1].iterations.mean(), cells()[i].iterations.mean())
        << cells()[i].dataset;
  }
}

TEST_F(TableShape, StandardCyclesGrowWithInstanceSize) {
  // §IV-C: "For Standard, the number of iterations until convergence is
  // closely related to the instance size."
  const auto& r64 = find_cell(cells(), "random64", core::MwuKind::kStandard);
  const auto& r256 = find_cell(cells(), "random256", core::MwuKind::kStandard);
  EXPECT_LT(r64.iterations.mean(), r256.iterations.mean());
}

TEST_F(TableShape, EveryAlgorithmAveragesAboveNinetyPercentAccuracy) {
  // §IV-D headline: "The mean accuracy of each algorithm is always at
  // least 90%" — asserted per algorithm over the whole suite.
  util::RunningStats per_kind[3];
  for (const auto& cell : cells()) {
    if (cell.intractable) continue;
    per_kind[static_cast<int>(cell.kind)].add(cell.accuracy.mean());
  }
  for (int k = 0; k < 3; ++k) {
    EXPECT_GT(per_kind[k].mean(), 90.0)
        << to_string(static_cast<core::MwuKind>(k));
  }
}

TEST_F(TableShape, StandardIsTheLeastAccurateOverall) {
  // §IV-D: "For problem domains that require a high degree of accuracy,
  // Standard is worse than the other two."
  util::RunningStats per_kind[3];
  for (const auto& cell : cells()) {
    if (cell.intractable) continue;
    per_kind[static_cast<int>(cell.kind)].add(cell.accuracy.mean());
  }
  const double standard = per_kind[static_cast<int>(core::MwuKind::kStandard)].mean();
  const double slate = per_kind[static_cast<int>(core::MwuKind::kSlate)].mean();
  const double distributed =
      per_kind[static_cast<int>(core::MwuKind::kDistributed)].mean();
  EXPECT_LT(standard, slate);
  EXPECT_LT(standard, distributed);
}

TEST_F(TableShape, DistributedBurnsTheMostCpuIterations) {
  // §IV-F: "while Distributed often requires the fewest iterations to
  // converge, it uses a large number of CPUs" — per dataset, Distributed's
  // CPU-iteration cost dwarfs Standard's.
  for (std::size_t i = 0; i + 2 < cells().size(); i += 3) {
    const auto& standard = cells()[i];
    const auto& distributed = cells()[i + 1];
    if (distributed.intractable) continue;
    EXPECT_GT(distributed.cpu_iterations.mean(),
              standard.cpu_iterations.mean())
        << standard.dataset;
  }
}

TEST_F(TableShape, DistributedPopulationGrowsWithInstanceSize) {
  const auto& small =
      find_cell(cells(), "random64", core::MwuKind::kDistributed);
  const auto& large =
      find_cell(cells(), "random256", core::MwuKind::kDistributed);
  EXPECT_GT(large.cpus_per_cycle, 4 * small.cpus_per_cycle);
}

TEST_F(TableShape, JavaScenariosGiveConsistentStandardCycles) {
  // §IV-C: "The performance of Standard is also consistent across all five
  // Java datasets" — same k=100, so cycle counts cluster tightly.
  util::RunningStats java_cycles;
  for (const auto& cell : cells()) {
    if (cell.family == "Java" && cell.kind == core::MwuKind::kStandard) {
      java_cycles.add(cell.iterations.mean());
    }
  }
  ASSERT_EQ(java_cycles.count(), 5u);
  EXPECT_LT(java_cycles.stddev(), 0.35 * java_cycles.mean());
}

}  // namespace
}  // namespace mwr::costmodel
