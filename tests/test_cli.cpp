// Unit tests for util/cli: declarative flags, strict parsing, and the
// standard bench-flag set.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "util/build_info.hpp"
#include "util/cli.hpp"

namespace mwr::util {
namespace {

// argv helper: parses a Cli against a list of string literals.
template <std::size_t N>
bool parse(Cli& cli, const std::array<const char*, N>& args) {
  std::array<char*, N> argv;
  for (std::size_t i = 0; i < N; ++i) argv[i] = const_cast<char*>(args[i]);
  return cli.parse(static_cast<int>(N), argv.data());
}

TEST(Cli, DefaultsSurviveEmptyParse) {
  Cli cli("test");
  cli.add_int("n", 42, "an int");
  cli.add_double("x", 2.5, "a double");
  cli.add_string("s", "hello", "a string");
  cli.add_flag("f", "a switch");
  EXPECT_TRUE(parse(cli, std::array{"prog"}));
  EXPECT_EQ(cli.get_int("n"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 2.5);
  EXPECT_EQ(cli.get_string("s"), "hello");
  EXPECT_FALSE(cli.get_flag("f"));
}

TEST(Cli, ParsesSeparateValueForm) {
  Cli cli("test");
  cli.add_int("n", 0, "");
  EXPECT_TRUE(parse(cli, std::array{"prog", "--n", "17"}));
  EXPECT_EQ(cli.get_int("n"), 17);
}

TEST(Cli, ParsesEqualsForm) {
  Cli cli("test");
  cli.add_double("x", 0.0, "");
  cli.add_string("s", "", "");
  EXPECT_TRUE(parse(cli, std::array{"prog", "--x=1.5", "--s=abc"}));
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 1.5);
  EXPECT_EQ(cli.get_string("s"), "abc");
}

TEST(Cli, ParsesSwitch) {
  Cli cli("test");
  cli.add_flag("full", "");
  EXPECT_TRUE(parse(cli, std::array{"prog", "--full"}));
  EXPECT_TRUE(cli.get_flag("full"));
}

TEST(Cli, NegativeIntegers) {
  Cli cli("test");
  cli.add_int("n", 0, "");
  EXPECT_TRUE(parse(cli, std::array{"prog", "--n", "-5"}));
  EXPECT_EQ(cli.get_int("n"), -5);
}

TEST(Cli, RejectsUnknownFlag) {
  Cli cli("test");
  EXPECT_THROW(parse(cli, std::array{"prog", "--typo"}),
               std::invalid_argument);
}

TEST(Cli, RejectsMissingValue) {
  Cli cli("test");
  cli.add_int("n", 0, "");
  EXPECT_THROW(parse(cli, std::array{"prog", "--n"}), std::invalid_argument);
}

TEST(Cli, RejectsNonNumericValue) {
  Cli cli("test");
  cli.add_int("n", 0, "");
  EXPECT_THROW(parse(cli, std::array{"prog", "--n", "abc"}),
               std::invalid_argument);
}

TEST(Cli, RejectsValueOnSwitch) {
  Cli cli("test");
  cli.add_flag("f", "");
  EXPECT_THROW(parse(cli, std::array{"prog", "--f=1"}), std::invalid_argument);
}

TEST(Cli, RejectsPositionalArguments) {
  Cli cli("test");
  EXPECT_THROW(parse(cli, std::array{"prog", "positional"}),
               std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("test");
  cli.add_int("n", 0, "");
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(parse(cli, std::array{"prog", "--help"}));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("--n"), std::string::npos);
}

TEST(Cli, VersionReturnsFalseAndReportsBuildConfig) {
  Cli cli("mytool — does things");
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(parse(cli, std::array{"prog", "--version"}));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("mytool mwrepair/"), std::string::npos);
  EXPECT_NE(out.find("sanitize="), std::string::npos);
  EXPECT_NE(out.find("thread-safety-analysis="), std::string::npos);
  EXPECT_NE(out.find("simd="), std::string::npos);
  EXPECT_EQ(out.find("—"), std::string::npos);  // description tail dropped
}

TEST(BuildInfo, LineIsSelfConsistent) {
  const std::string line = build_info_line("x");
  if (thread_safety_analysis()) {
    EXPECT_NE(line.find("thread-safety-analysis=on"), std::string::npos);
  } else {
    EXPECT_NE(line.find("thread-safety-analysis=off"), std::string::npos);
  }
  const std::string san = sanitizers();
  EXPECT_NE(line.find(san.empty() ? "sanitize=none" : "sanitize=" + san),
            std::string::npos);
  EXPECT_NE(line.find(compiler()), std::string::npos);
  EXPECT_NE(line.find(std::string("simd=") + simd_dispatch()),
            std::string::npos);
}

TEST(Cli, TypedAccessorsEnforceKinds) {
  Cli cli("test");
  cli.add_int("n", 0, "");
  EXPECT_THROW((void)cli.get_double("n"), std::logic_error);
  EXPECT_THROW((void)cli.get_int("never-registered"), std::logic_error);
}

TEST(Cli, UsageListsAllFlagsWithDefaults) {
  Cli cli("my program");
  cli.add_int("count", 9, "how many");
  cli.add_flag("quick", "go fast");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("my program"), std::string::npos);
  EXPECT_NE(usage.find("--count N (default 9)"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
  EXPECT_NE(usage.find("--quick"), std::string::npos);
}

TEST(Cli, StandardBenchFlagsArePresent) {
  Cli cli("bench");
  add_standard_bench_flags(cli);
  EXPECT_TRUE(parse(cli, std::array{"prog", "--full", "--seeds", "3",
                                    "--max-size", "64", "--csv", "out.csv",
                                    "--seed", "1", "--threads", "2"}));
  EXPECT_TRUE(cli.get_flag("full"));
  EXPECT_EQ(cli.get_int("seeds"), 3);
  EXPECT_EQ(cli.get_int("max-size"), 64);
  EXPECT_EQ(cli.get_string("csv"), "out.csv");
}

}  // namespace
}  // namespace mwr::util
