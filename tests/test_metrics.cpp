// Tests for the observability subsystem (obs/): metric primitives under
// concurrency, histogram bucket semantics, the JSON document model, and
// registry snapshots round-tripping through the serialization helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/serialization.hpp"

namespace mwr::obs {
namespace {

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, AddWithArgumentAndReset) {
  Counter counter;
  counter.add(41);
  counter.add();
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Gauge, SetAddAndRecordMax) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.record_max(3.0);  // below current: no-op
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.record_max(7.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
}

TEST(Gauge, ConcurrentAddsSumExactly) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kPerThread);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1.0  -> bucket 0
  h.observe(1.0);   // <= 1.0  -> bucket 0 (bound is inclusive)
  h.observe(1.001); // <= 2.0  -> bucket 1
  h.observe(4.0);   // <= 4.0  -> bucket 2
  h.observe(100.0); // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 4.0 + 100.0);
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, ExponentialBoundsLayout) {
  const auto bounds = Histogram::exponential_bounds(1e-3, 10.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-3);
  EXPECT_DOUBLE_EQ(bounds[1], 1e-2);
  EXPECT_DOUBLE_EQ(bounds[2], 1e-1);
  EXPECT_DOUBLE_EQ(bounds[3], 1.0);
  EXPECT_THROW(Histogram::exponential_bounds(0.0, 2.0, 3),
               std::invalid_argument);
  EXPECT_THROW(Histogram::exponential_bounds(1.0, 1.0, 3),
               std::invalid_argument);
}

TEST(Histogram, ConcurrentObservationsAreAllCounted) {
  Histogram h(Histogram::exponential_bounds(1.0, 2.0, 8));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i <= h.upper_bounds().size(); ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), kThreads);
}

TEST(ScopedTimer, FeedsHistogramOnScopeExit) {
  Histogram h(MetricsRegistry::default_latency_bounds());
  {
    ScopedTimer timer(h);
    EXPECT_GE(timer.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(ScopedTimer, CancelSuppressesTheObservation) {
  Histogram h(MetricsRegistry::default_latency_bounds());
  {
    ScopedTimer timer(h);
    timer.cancel();
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST(Json, DumpAndParseScalars) {
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(nullptr).dump(), "null");
  EXPECT_EQ(JsonValue(42.0).dump(), "42");
  EXPECT_EQ(JsonValue("hi\n\"there\"").dump(), "\"hi\\n\\\"there\\\"\"");
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1.5e3").as_double(), -1500.0);
  EXPECT_EQ(JsonValue::parse("\"a\\u0041b\"").as_string(), "aAb");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zebra", 1.0);
  obj.set("alpha", 2.0);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2}");
  obj.set("zebra", 3.0);  // overwrite keeps position
  EXPECT_EQ(obj.dump(), "{\"zebra\":3,\"alpha\":2}");
}

TEST(Json, RoundTripPreservesStructureAndPrecision) {
  JsonValue root = JsonValue::object();
  root.set("pi", 3.141592653589793);
  root.set("big", 9007199254740991.0);
  root.set("name", "metrics \"v1\"\t\\");
  JsonValue arr = JsonValue::array();
  arr.push_back(1.0);
  arr.push_back(false);
  arr.push_back(nullptr);
  root.set("items", std::move(arr));

  const JsonValue parsed = JsonValue::parse(root.dump(2));
  EXPECT_DOUBLE_EQ(parsed.at("pi").as_double(), 3.141592653589793);
  EXPECT_DOUBLE_EQ(parsed.at("big").as_double(), 9007199254740991.0);
  EXPECT_EQ(parsed.at("name").as_string(), "metrics \"v1\"\t\\");
  ASSERT_EQ(parsed.at("items").size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.at("items").as_array()[0].as_double(), 1.0);
  EXPECT_FALSE(parsed.at("items").as_array()[1].as_bool());
  EXPECT_TRUE(parsed.at("items").as_array()[2].is_null());
  // dump -> parse -> dump is a fixed point.
  EXPECT_EQ(parsed.dump(), JsonValue::parse(parsed.dump()).dump());
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("tru"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{} extra"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
}

TEST(Registry, HandlesAreStableAndSharedByName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter("x.count").value(), 3u);
  // reset() zeroes but never invalidates.
  registry.reset();
  EXPECT_EQ(a.value(), 0u);
  a.add(1);
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, HistogramFirstRegistrationWins) {
  MetricsRegistry registry;
  Histogram& a = registry.histogram("h", {1.0, 2.0});
  Histogram& b = registry.histogram("h", {5.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.upper_bounds().size(), 2u);
}

TEST(Registry, SnapshotRoundTripsThroughJson) {
  MetricsRegistry registry;
  registry.counter("repair.online.probes").add(192);
  registry.gauge("repair.repaired").set(1.0);
  Histogram& h = registry.histogram("phase.online.seconds", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(10.0);

  const JsonValue parsed = JsonValue::parse(registry.to_json_string());
  EXPECT_EQ(parsed.at("schema").as_string(), "mwr-metrics-v1");
  EXPECT_DOUBLE_EQ(
      parsed.at("counters").at("repair.online.probes").as_double(), 192.0);
  EXPECT_DOUBLE_EQ(parsed.at("gauges").at("repair.repaired").as_double(),
                   1.0);
  const JsonValue& hist =
      parsed.at("histograms").at("phase.online.seconds");
  ASSERT_EQ(hist.at("le").size(), 2u);
  ASSERT_EQ(hist.at("counts").size(), 3u);  // 2 bounds + overflow
  EXPECT_DOUBLE_EQ(hist.at("counts").as_array()[0].as_double(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("counts").as_array()[1].as_double(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("counts").as_array()[2].as_double(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("count").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(hist.at("min").as_double(), 0.05);
  EXPECT_DOUBLE_EQ(hist.at("max").as_double(), 10.0);
}

TEST(Registry, WriteJsonProducesAParsableFile) {
  MetricsRegistry registry;
  registry.counter("c").add(7);
  const std::string path = ::testing::TempDir() + "mwr_metrics_test.json";
  registry.write_json(path);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  const JsonValue parsed = JsonValue::parse(buffer.str());
  EXPECT_DOUBLE_EQ(parsed.at("counters").at("c").as_double(), 7.0);
  std::remove(path.c_str());
}

TEST(Registry, ConcurrentLookupsAndMutationsAreSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.counter("shared.count").add(1);
        registry.histogram("shared.seconds").observe(1e-5);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared.count").value(),
            kThreads * kPerThread);
  EXPECT_EQ(registry.histogram("shared.seconds").count(),
            kThreads * kPerThread);
}

// Regression (static-analysis bring-up audit): registration, reset() and
// to_json() all walk the registry's guarded maps, so snapshotting while
// other threads register fresh metrics must never crash or emit an
// inconsistent document.  Each snapshot must parse and every counter it
// reports must hold a value that was legal at some instant (here: the
// shared counter only ever grows, and per-name counters are 0 or 1).
TEST(Registry, SnapshotWhileRegisteringStaysConsistent) {
  MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kPerThread = 300;
  std::atomic<bool> done{false};
  std::atomic<int> bad_snapshots{0};
  std::thread snapshotter([&] {
    double last_shared = 0.0;
    while (!done.load(std::memory_order_relaxed)) {
      const JsonValue parsed = JsonValue::parse(registry.to_json_string());
      if (parsed.at("schema").as_string() != "mwr-metrics-v1") {
        bad_snapshots.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const JsonValue& counters = parsed.at("counters");
      if (counters.contains("shared.count")) {
        const double shared = counters.at("shared.count").as_double();
        if (shared < last_shared) {
          bad_snapshots.fetch_add(1, std::memory_order_relaxed);
        }
        last_shared = shared;
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&registry, t] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.counter("shared.count").add(1);
        registry
            .counter("writer." + std::to_string(t) + ".item." +
                     std::to_string(i))
            .add(1);
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_relaxed);
  snapshotter.join();
  EXPECT_EQ(bad_snapshots.load(), 0);
  EXPECT_EQ(registry.counter("shared.count").value(),
            static_cast<std::uint64_t>(kWriters * kPerThread));
}

TEST(Registry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace mwr::obs
