// Unit + property tests for core/slate_projection: the capping fixpoint,
// the O(k^2) convex decomposition, and the systematic sampler — the
// machinery behind the paper's Slate variant (§II-C: decomposing the capped
// weight vector into a convex combination of slates).
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/slate_projection.hpp"

namespace mwr::core {
namespace {

std::vector<double> normalized_random(std::size_t k, std::uint64_t seed) {
  util::RngStream rng(seed);
  std::vector<double> p(k);
  double total = 0.0;
  for (auto& v : p) total += (v = rng.uniform() + 1e-6);
  for (auto& v : p) v /= total;
  return p;
}

TEST(CapToSlateMarginals, UniformDistributionScalesExactly) {
  const std::vector<double> p(10, 0.1);
  const auto q = cap_to_slate_marginals(p, 3);
  for (const double v : q) EXPECT_NEAR(v, 0.3, 1e-12);
}

TEST(CapToSlateMarginals, CapsDominantEntryAtOne) {
  const std::vector<double> p = {0.97, 0.01, 0.01, 0.01};
  const auto q = cap_to_slate_marginals(p, 2);
  EXPECT_DOUBLE_EQ(q[0], 1.0);
  // Remaining mass (1 slot) spread proportionally over the rest.
  EXPECT_NEAR(q[1] + q[2] + q[3], 1.0, 1e-9);
  EXPECT_NEAR(q[1], 1.0 / 3.0, 1e-9);
}

TEST(CapToSlateMarginals, SlateEqualsKSelectsEverything) {
  const auto p = normalized_random(6, 1);
  const auto q = cap_to_slate_marginals(p, 6);
  for (const double v : q) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(CapToSlateMarginals, RejectsBadSlateSize) {
  const std::vector<double> p = {0.5, 0.5};
  EXPECT_THROW(cap_to_slate_marginals(p, 0), std::invalid_argument);
  EXPECT_THROW(cap_to_slate_marginals(p, 3), std::invalid_argument);
}

TEST(CapToSlateMarginals, CascadingCaps) {
  // Two heavy entries both need capping once the first is capped.
  const std::vector<double> p = {0.46, 0.44, 0.05, 0.05};
  const auto q = cap_to_slate_marginals(p, 3);
  EXPECT_DOUBLE_EQ(q[0], 1.0);
  EXPECT_DOUBLE_EQ(q[1], 1.0);
  EXPECT_NEAR(q[2] + q[3], 1.0, 1e-9);
  EXPECT_NEAR(q[2], 0.5, 1e-9);
}

TEST(DecomposeIntoSlates, RejectsInfeasibleInput) {
  EXPECT_THROW(decompose_into_slates(std::vector<double>{0.5, 0.5}, 3),
               std::invalid_argument);
  // Sum != slate size.
  EXPECT_THROW(decompose_into_slates(std::vector<double>{0.2, 0.2}, 1),
               std::invalid_argument);
  // Entry above 1.
  EXPECT_THROW(decompose_into_slates(std::vector<double>{1.5, 0.5}, 2),
               std::invalid_argument);
}

TEST(DecomposeIntoSlates, IntegralInputIsASingleSlate) {
  const std::vector<double> q = {1.0, 0.0, 1.0, 0.0};
  const auto components = decompose_into_slates(q, 2);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_NEAR(components[0].coefficient, 1.0, 1e-9);
  EXPECT_EQ(components[0].members, (std::vector<std::size_t>{0, 2}));
}

// The decomposition's defining property: coefficients sum to 1, every
// component is a distinct s-subset, and the mixture reproduces q exactly.
class DecompositionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DecompositionSweep, MixtureReproducesMarginals) {
  const auto [k, slate] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto p = normalized_random(k, seed);
    const auto q = cap_to_slate_marginals(p, slate);
    const auto components = decompose_into_slates(q, slate);

    double coefficient_sum = 0.0;
    std::vector<double> reconstructed(k, 0.0);
    for (const auto& component : components) {
      EXPECT_GT(component.coefficient, 0.0);
      ASSERT_EQ(component.members.size(), slate);
      const std::set<std::size_t> unique(component.members.begin(),
                                         component.members.end());
      EXPECT_EQ(unique.size(), slate) << "slate members must be distinct";
      coefficient_sum += component.coefficient;
      for (const std::size_t i : component.members) {
        reconstructed[i] += component.coefficient;
      }
    }
    EXPECT_NEAR(coefficient_sum, 1.0, 1e-6);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(reconstructed[i], q[i], 1e-6) << "option " << i;
    }
    // O(k^2)-ish component count: at most ~2k components.
    EXPECT_LE(components.size(), 2 * k + 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecompositionSweep,
    ::testing::Values(std::make_tuple(4, 1), std::make_tuple(8, 2),
                      std::make_tuple(16, 3), std::make_tuple(32, 8),
                      std::make_tuple(64, 5), std::make_tuple(100, 25)));

TEST(SystematicSample, AlwaysReturnsExactlySlateDistinctIndices) {
  util::RngStream rng(3);
  const auto p = normalized_random(50, 4);
  const auto q = cap_to_slate_marginals(p, 7);
  for (int trial = 0; trial < 200; ++trial) {
    const auto slate = systematic_sample(q, 7, rng);
    ASSERT_EQ(slate.size(), 7u);
    const std::set<std::size_t> unique(slate.begin(), slate.end());
    EXPECT_EQ(unique.size(), 7u);
    for (const auto i : slate) EXPECT_LT(i, 50u);
  }
}

TEST(SystematicSample, RejectsBadSlateSize) {
  util::RngStream rng(5);
  const std::vector<double> q = {1.0, 1.0};
  EXPECT_THROW(systematic_sample(q, 0, rng), std::invalid_argument);
  EXPECT_THROW(systematic_sample(q, 3, rng), std::invalid_argument);
}

TEST(SystematicSample, CappedEntryIsAlwaysSelected) {
  util::RngStream rng(6);
  const std::vector<double> p = {0.97, 0.01, 0.01, 0.01};
  const auto q = cap_to_slate_marginals(p, 2);  // q[0] == 1
  for (int trial = 0; trial < 100; ++trial) {
    const auto slate = systematic_sample(q, 2, rng);
    EXPECT_NE(std::find(slate.begin(), slate.end(), 0u), slate.end());
  }
}

TEST(SystematicSample, InclusionFrequenciesMatchMarginals) {
  util::RngStream rng(7);
  const auto p = normalized_random(12, 8);
  constexpr std::size_t kSlate = 4;
  const auto q = cap_to_slate_marginals(p, kSlate);
  std::vector<int> counts(12, 0);
  constexpr int kTrials = 50000;
  for (int trial = 0; trial < kTrials; ++trial) {
    for (const auto i : systematic_sample(q, kSlate, rng)) ++counts[i];
  }
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kTrials, q[i], 0.02)
        << "option " << i;
  }
}

}  // namespace
}  // namespace mwr::core
