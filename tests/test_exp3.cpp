// Unit tests for core/exp3_mwu: the importance-weighted extension variant.
#include <gtest/gtest.h>

#include <numeric>

#include "core/exp3_mwu.hpp"

namespace mwr::core {
namespace {

MwuConfig config_for(std::size_t k, std::size_t agents = 16) {
  MwuConfig config;
  config.num_options = k;
  config.num_agents = agents;
  return config;
}

TEST(Exp3Mwu, RejectsBadConfiguration) {
  EXPECT_THROW(Exp3Mwu(config_for(0)), std::invalid_argument);
  EXPECT_THROW(Exp3Mwu(config_for(4, 0)), std::invalid_argument);
  auto bad = config_for(4);
  bad.exploration = 0.0;
  EXPECT_THROW(Exp3Mwu{bad}, std::invalid_argument);
  bad.exploration = 1.5;
  EXPECT_THROW(Exp3Mwu{bad}, std::invalid_argument);
}

TEST(Exp3Mwu, FactoryAndNaming) {
  EXPECT_EQ(to_string(MwuKind::kExp3), "Exp3");
  const auto strategy = make_mwu(MwuKind::kExp3, config_for(8));
  EXPECT_EQ(strategy->kind(), MwuKind::kExp3);
  EXPECT_EQ(strategy->cpus_per_cycle(), 16u);
}

TEST(Exp3Mwu, InitialDistributionIsUniform) {
  Exp3Mwu mwu(config_for(10));
  for (const double p : mwu.probabilities()) EXPECT_NEAR(p, 0.1, 1e-12);
}

TEST(Exp3Mwu, ProbabilitiesKeepTheGammaFloor) {
  auto config = config_for(10);
  config.exploration = 0.2;
  Exp3Mwu mwu(config);
  util::RngStream rng(1);
  for (int cycle = 0; cycle < 300; ++cycle) {
    const auto probes = mwu.sample(rng);
    std::vector<double> rewards(probes.size());
    for (std::size_t j = 0; j < probes.size(); ++j) {
      rewards[j] = probes[j] == 0 ? 1.0 : 0.0;  // option 0 always wins
    }
    mwu.update(probes, rewards, rng);
  }
  const auto p = mwu.probabilities();
  for (const double v : p) EXPECT_GE(v, 0.2 / 10.0 - 1e-12);
  EXPECT_EQ(mwu.best_option(), 0u);
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-9);
}

TEST(Exp3Mwu, ImportanceWeightingBoostsRareObservations) {
  // The same unit reward moves a low-probability option's weight more than
  // a high-probability one's — the defining Exp3 property.
  auto config = config_for(4, 1);
  Exp3Mwu mwu(config);
  util::RngStream rng(2);
  // Skew the distribution toward option 0 first.
  for (int i = 0; i < 30; ++i) {
    mwu.update(std::vector<std::size_t>{0}, std::vector<double>{1.0}, rng);
  }
  const auto p_before = mwu.probabilities();
  ASSERT_GT(p_before[0], p_before[1]);
  // One unit reward each for the likely and unlikely option.
  Exp3Mwu likely = mwu;
  Exp3Mwu unlikely = mwu;
  util::RngStream rng2(3);
  likely.update(std::vector<std::size_t>{0}, std::vector<double>{1.0}, rng2);
  unlikely.update(std::vector<std::size_t>{1}, std::vector<double>{1.0}, rng2);
  const double likely_gain =
      likely.probabilities()[0] / p_before[0];
  const double unlikely_gain =
      unlikely.probabilities()[1] / p_before[1];
  EXPECT_GT(unlikely_gain, likely_gain);
}

TEST(Exp3Mwu, UpdateRejectsSizeMismatch) {
  Exp3Mwu mwu(config_for(4));
  util::RngStream rng(4);
  EXPECT_THROW(mwu.update(std::vector<std::size_t>{0},
                          std::vector<double>{1.0, 0.0}, rng),
               std::invalid_argument);
}

TEST(Exp3Mwu, FindsTheDominantOptionByWeight) {
  OptionSet options("easy", {0.05, 0.05, 0.9, 0.05, 0.05, 0.05, 0.05, 0.05});
  const BernoulliOracle oracle(options);
  auto config = config_for(8);
  config.max_iterations = 400;
  const auto result =
      run_mwu(MwuKind::kExp3, oracle, config, util::RngStream(5));
  EXPECT_EQ(result.best_option, 2u);
  EXPECT_GT(options.accuracy_percent(result.best_option), 99.0);
}

TEST(Exp3Mwu, WeightsStayBoundedOverLongRuns) {
  Exp3Mwu mwu(config_for(4, 8));
  util::RngStream rng(6);
  for (int cycle = 0; cycle < 3000; ++cycle) {
    const auto probes = mwu.sample(rng);
    std::vector<double> rewards(probes.size(), 1.0);
    mwu.update(probes, rewards, rng);
  }
  for (const double w : mwu.weights()) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(Exp3Mwu, InitResets) {
  Exp3Mwu mwu(config_for(4));
  util::RngStream rng(7);
  mwu.update(std::vector<std::size_t>(16, 0), std::vector<double>(16, 1.0),
             rng);
  mwu.init();
  for (const double p : mwu.probabilities()) EXPECT_NEAR(p, 0.25, 1e-12);
}

}  // namespace
}  // namespace mwr::core
