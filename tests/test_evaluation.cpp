// Unit tests for costmodel/evaluation: the Tables II-IV sweep harness.
#include <gtest/gtest.h>

#include "costmodel/evaluation.hpp"

namespace mwr::costmodel {
namespace {

EvalConfig tiny_config() {
  EvalConfig config;
  config.seeds = 2;
  config.max_size = 64;
  config.max_iterations = 2000;
  config.master_seed = 123;
  return config;
}

TEST(RunEvaluation, ThreeCellsPerDataset) {
  const auto cells = run_evaluation(tiny_config());
  // max_size 64 keeps random64, unimodal64, lighttpd(50): 3 datasets x 3.
  ASSERT_EQ(cells.size(), 9u);
  for (std::size_t i = 0; i + 2 < cells.size(); i += 3) {
    EXPECT_EQ(cells[i].kind, core::MwuKind::kStandard);
    EXPECT_EQ(cells[i + 1].kind, core::MwuKind::kDistributed);
    EXPECT_EQ(cells[i + 2].kind, core::MwuKind::kSlate);
    EXPECT_EQ(cells[i].dataset, cells[i + 1].dataset);
    EXPECT_EQ(cells[i].dataset, cells[i + 2].dataset);
  }
}

TEST(RunEvaluation, CellsCarryReplicationStatistics) {
  const auto config = tiny_config();
  const auto cells = run_evaluation(config);
  for (const auto& cell : cells) {
    if (cell.intractable) continue;
    EXPECT_EQ(cell.iterations.count(), config.seeds) << cell.dataset;
    EXPECT_EQ(cell.accuracy.count(), config.seeds);
    EXPECT_GT(cell.cpus_per_cycle, 0u);
    EXPECT_GE(cell.accuracy.mean(), 0.0);
    EXPECT_LE(cell.accuracy.mean(), 100.0);
    EXPECT_NEAR(cell.cpu_iterations.mean(),
                cell.iterations.mean() *
                    static_cast<double>(cell.cpus_per_cycle),
                1e-6);
  }
}

TEST(RunEvaluation, DistributedIntractableCellsAtFullScale) {
  auto config = tiny_config();
  config.seeds = 1;
  config.max_size = 16384;
  config.max_iterations = 1;  // keep the tractable runs trivial
  const auto cells = run_evaluation(config);
  std::size_t intractable = 0;
  for (const auto& cell : cells) {
    if (cell.intractable) {
      EXPECT_EQ(cell.kind, core::MwuKind::kDistributed);
      EXPECT_EQ(cell.size, 16384u);
      ++intractable;
    }
  }
  // Exactly the paper's two "-" cells: random16384 and unimodal16384.
  EXPECT_EQ(intractable, 2u);
}

TEST(RunEvaluation, DeterministicPerMasterSeed) {
  const auto a = run_evaluation(tiny_config());
  const auto b = run_evaluation(tiny_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].iterations.mean(), b[i].iterations.mean());
    EXPECT_EQ(a[i].accuracy.mean(), b[i].accuracy.mean());
  }
}

TEST(RunEvaluation, ParallelSweepIsBitIdenticalToSerial) {
  // The sweep fans out at (cell, seed) granularity but folds outcomes into
  // the RunningStats serially in (cell, seed) order, so every statistic —
  // including stddev, which is sensitive to accumulation order — matches
  // the serial sweep exactly at any thread count.
  auto config = tiny_config();
  config.seeds = 3;
  config.threads = 1;
  const auto serial = run_evaluation(config);
  for (const std::size_t threads : {2u, 4u}) {
    config.threads = threads;
    const auto parallel = run_evaluation(config);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].iterations.mean(), serial[i].iterations.mean());
      EXPECT_EQ(parallel[i].iterations.stddev(),
                serial[i].iterations.stddev());
      EXPECT_EQ(parallel[i].accuracy.mean(), serial[i].accuracy.mean());
      EXPECT_EQ(parallel[i].accuracy.stddev(), serial[i].accuracy.stddev());
      EXPECT_EQ(parallel[i].cpu_iterations.mean(),
                serial[i].cpu_iterations.mean());
      EXPECT_EQ(parallel[i].converged_runs, serial[i].converged_runs);
    }
  }
}

TEST(RunEvaluation, RaisedPopulationCapMakesFullScaleCellsTractable) {
  // The paper-fidelity default (1M cap) keeps the two k=16384 Distributed
  // cells intractable; an explicit opt-in cap above the required
  // population (16384 * 75 ≈ 1.2M) makes them runnable.
  auto config = tiny_config();
  config.seeds = 1;
  config.max_size = 16384;
  config.max_iterations = 1;  // tractability is the point, not convergence
  config.mwu.max_population = 2'000'000;
  const auto cells = run_evaluation(config);
  for (const auto& cell : cells) {
    EXPECT_FALSE(cell.intractable) << cell.dataset;
    if (cell.kind == core::MwuKind::kDistributed) {
      EXPECT_EQ(cell.iterations.count(), 1u) << cell.dataset;
    }
  }
}

TEST(FindCell, LooksUpByDatasetAndKind) {
  const auto cells = run_evaluation(tiny_config());
  const auto& cell = find_cell(cells, "random64", core::MwuKind::kSlate);
  EXPECT_EQ(cell.dataset, "random64");
  EXPECT_EQ(cell.kind, core::MwuKind::kSlate);
  EXPECT_THROW((void)find_cell(cells, "no-such-dataset", core::MwuKind::kSlate),
               std::invalid_argument);
}

}  // namespace
}  // namespace mwr::costmodel
