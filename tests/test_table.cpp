// Unit tests for util/table: layout, CSV escaping, formatting helpers, and
// error contracts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/table.hpp"

namespace mwr::util {
namespace {

TEST(Table, AsciiContainsTitleHeaderAndRows) {
  Table table("My Table");
  table.set_header({"a", "bb"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  const std::string ascii = table.to_ascii();
  EXPECT_NE(ascii.find("My Table"), std::string::npos);
  EXPECT_NE(ascii.find("| a "), std::string::npos);
  EXPECT_NE(ascii.find("333"), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table table("t");
  table.set_header({"x"});
  table.add_row({"wide-cell"});
  const std::string ascii = table.to_ascii();
  // Header cell padded to the width of "wide-cell".
  EXPECT_NE(ascii.find("| x         |"), std::string::npos);
}

TEST(Table, RowCountIgnoresSeparators) {
  Table table("t");
  table.set_header({"x"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table table("t");
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsHeaderAfterRows) {
  Table table("t");
  table.set_header({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.set_header({"b"}), std::logic_error);
}

TEST(Table, CsvSkipsSeparatorsAndEscapes) {
  Table table("t");
  table.set_header({"name", "value"});
  table.add_row({"plain", "1"});
  table.add_separator();
  table.add_row({"has,comma", "has\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_EQ(csv, "name,value\nplain,1\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST(Table, EmitWritesCsvFile) {
  Table table("t");
  table.set_header({"a"});
  table.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/mwr_table_test.csv";
  std::ostringstream sink;
  table.emit(sink, path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a");
  f.close();
  std::remove(path.c_str());
}

TEST(Table, EmitThrowsOnUnwritableCsvPath) {
  Table table("t");
  table.set_header({"a"});
  std::ostringstream sink;
  EXPECT_THROW(table.emit(sink, "/nonexistent-dir/x.csv"),
               std::runtime_error);
}

TEST(Formatting, MeanSd) {
  EXPECT_EQ(fmt_mean_sd(94.53, 5.61), "94.5 (5.6)");
  EXPECT_EQ(fmt_mean_sd(1.0, 0.0, 2), "1.00 (0.00)");
}

TEST(Formatting, Fixed) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(10.0, 0), "10");
}

TEST(Formatting, CappedUsesPaperStyle) {
  EXPECT_EQ(fmt_capped(10000.0, 10000.0), ">= 10000");
  EXPECT_EQ(fmt_capped(12000.0, 10000.0), ">= 10000");
  EXPECT_EQ(fmt_capped(532.4, 10000.0, 1), "532.4");
}

}  // namespace
}  // namespace mwr::util
