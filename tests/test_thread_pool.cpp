// Unit tests for parallel/thread_pool: futures, exception propagation,
// parallel_for coverage, and lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace mwr::parallel {
namespace {

TEST(ThreadPool, ReportsItsSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitVoidTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto future = pool.submit([&] { counter.fetch_add(1); });
  future.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, WorkersSurviveAFailedTask) {
  ThreadPool pool(1);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  auto good = pool.submit([] { return 1; });
  EXPECT_EQ(good.get(), 1);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      (void)pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_index(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for_index(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for_index(3, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_index(
                   10,
                   [](std::size_t i) {
                     if (i == 5) throw std::runtime_error("bad index");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // Regression: parallel_for_index called from inside one of the pool's own
  // tasks used to submit chunks back into the pool and block on their
  // futures — with every worker inside such a call, the chunks sat queued
  // behind the waiting tasks forever.  A pool of size 1 makes the hang
  // deterministic; the fix runs the nested range inline.
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(64);
  auto outer = pool.submit([&] {
    pool.parallel_for_index(hits.size(),
                            [&](std::size_t i) { hits[i].fetch_add(1); });
  });
  outer.get();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForInsideParallelFor) {
  // Same hazard through the other entry point: every outer chunk fans out
  // again on the same saturated pool.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for_index(8, [&](std::size_t) {
    pool.parallel_for_index(8, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, NestedParallelForStillPropagatesExceptions) {
  ThreadPool pool(1);
  auto outer = pool.submit([&] {
    pool.parallel_for_index(4, [](std::size_t i) {
      if (i == 2) throw std::runtime_error("nested failure");
    });
  });
  EXPECT_THROW(outer.get(), std::runtime_error);
}

TEST(ThreadPool, SubmitFromInsideATask) {
  ThreadPool pool(2);
  auto outer = pool.submit([&] {
    auto inner = pool.submit([] { return 5; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 6);
}

class ParallelForSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelForSweep, SumOfIndicesIsCorrect) {
  ThreadPool pool(GetParam());
  std::atomic<std::int64_t> sum{0};
  constexpr std::size_t kCount = 2000;
  pool.parallel_for_index(kCount, [&](std::size_t i) {
    sum.fetch_add(static_cast<std::int64_t>(i));
  });
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kCount * (kCount - 1) / 2));
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelForSweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace mwr::parallel
