// Transport-layer tests: the versioned wire codec (round-trip, determinism,
// partial-buffer and corruption behavior), the core/serialization Message
// seam, process-world smoke runs over both multi-process fabrics, and
// kill-a-worker abort propagation (a SIGKILLed worker must fail the world
// instead of hanging it).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <vector>

#include "core/serialization.hpp"
#include "parallel/transport/process_world.hpp"
#include "parallel/transport/wire.hpp"
#include "util/rng.hpp"

namespace mwr::parallel::transport {
namespace {

// --- wire codec ------------------------------------------------------------

TEST(WireCodec, MessageFrameRoundTrips) {
  const WireFrame frame =
      WireFrame::message(3, 7, 42, {1.5, -0.25, 1e300, 0.0}, /*tracked=*/true);
  std::vector<std::uint8_t> bytes;
  encode_frame(frame, bytes);
  EXPECT_EQ(bytes.size(), encoded_size(frame));

  WireFrame decoded;
  const std::size_t used = decode_frame(bytes.data(), bytes.size(), decoded);
  EXPECT_EQ(used, bytes.size());
  EXPECT_EQ(decoded, frame);
}

TEST(WireCodec, ControlFramesRoundTrip) {
  for (const FrameKind kind :
       {FrameKind::kHello, FrameKind::kBarrierMarker, FrameKind::kCycleMax,
        FrameKind::kShutdown}) {
    const WireFrame frame = WireFrame::control(kind, 0xdeadbeefcafe1234ull);
    std::vector<std::uint8_t> bytes;
    encode_frame(frame, bytes);
    WireFrame decoded;
    ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), decoded), bytes.size());
    EXPECT_EQ(decoded, frame);
  }
}

TEST(WireCodec, EncodingAppendsWithoutDisturbingPriorBytes) {
  const WireFrame a = WireFrame::message(0, 1, 5, {2.0}, false);
  const WireFrame b = WireFrame::control(FrameKind::kBarrierMarker, 9);
  std::vector<std::uint8_t> stream;
  encode_frame(a, stream);
  const std::size_t split = stream.size();
  encode_frame(b, stream);

  WireFrame first, second;
  const std::size_t used_a = decode_frame(stream.data(), stream.size(), first);
  EXPECT_EQ(used_a, split);
  const std::size_t used_b =
      decode_frame(stream.data() + used_a, stream.size() - used_a, second);
  EXPECT_EQ(used_a + used_b, stream.size());
  EXPECT_EQ(first, a);
  EXPECT_EQ(second, b);
}

TEST(WireCodec, PartialBufferConsumesNothing) {
  const WireFrame frame = WireFrame::message(1, 2, 3, {4.0, 5.0}, true);
  std::vector<std::uint8_t> bytes;
  encode_frame(frame, bytes);
  WireFrame decoded;
  // Every strict prefix is "incomplete", never an error, never progress.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_EQ(decode_frame(bytes.data(), len, decoded), 0u) << len;
  }
}

TEST(WireCodec, CorruptMagicThrows) {
  std::vector<std::uint8_t> bytes;
  encode_frame(WireFrame::control(FrameKind::kShutdown, 0), bytes);
  bytes[4] ^= 0xff;  // first magic byte, after the u32 length prefix
  WireFrame decoded;
  EXPECT_THROW(decode_frame(bytes.data(), bytes.size(), decoded),
               WireFormatError);
}

TEST(WireCodec, VersionMismatchThrows) {
  std::vector<std::uint8_t> bytes;
  encode_frame(WireFrame::control(FrameKind::kShutdown, 0), bytes);
  bytes[8] ^= 0xff;  // low byte of the u16 version field
  WireFrame decoded;
  EXPECT_THROW(decode_frame(bytes.data(), bytes.size(), decoded),
               WireFormatError);
}

TEST(WireCodec, GeometryFingerprintSeparatesWorldShapes) {
  const auto fp = geometry_fingerprint(1024, 4);
  EXPECT_NE(fp, geometry_fingerprint(1024, 8));
  EXPECT_NE(fp, geometry_fingerprint(2048, 4));
  EXPECT_EQ(fp, geometry_fingerprint(1024, 4));
}

// --- core/serialization Message seam ---------------------------------------

TEST(MessageSerialization, RoundTripsEnvelopeAndPayload) {
  Message message;
  message.source = 12;
  message.tag = 101;
  message.payload = PayloadVec({0.5, -3.25, 7.0});

  const auto bytes = core::serialize_message(message, /*dest_rank=*/99,
                                             /*tracked=*/true);
  int dest = -1;
  bool tracked = false;
  const Message back =
      core::deserialize_message(bytes.data(), bytes.size(), &dest, &tracked);
  EXPECT_EQ(back.source, 12);
  EXPECT_EQ(back.tag, 101);
  EXPECT_EQ(back.payload.to_vector(), message.payload.to_vector());
  EXPECT_EQ(dest, 99);
  EXPECT_TRUE(tracked);
}

// Same seed => identical byte streams.  The codec is a pure function of the
// message, so two runs that draw the same random messages must serialize
// them to the very same bytes — the property the cross-backend bit-identity
// pins rely on.
TEST(MessageSerialization, SameSeedYieldsIdenticalByteStreams) {
  const auto stream_for = [](std::uint64_t seed) {
    util::RngStream rng(seed);
    std::vector<std::uint8_t> bytes;
    for (int i = 0; i < 64; ++i) {
      Message message;
      message.source = static_cast<int>(rng.uniform_int(0, 511));
      message.tag = static_cast<int>(rng.uniform_int(0, 63));
      std::vector<double> payload(
          static_cast<std::size_t>(rng.uniform_int(0, 8)));
      for (double& x : payload) x = rng.uniform();
      message.payload = PayloadVec(std::move(payload));
      const auto frame = core::serialize_message(
          message, static_cast<int>(rng.uniform_int(0, 511)),
          rng.bernoulli(0.5));
      bytes.insert(bytes.end(), frame.begin(), frame.end());
    }
    return bytes;
  };
  EXPECT_EQ(stream_for(1234), stream_for(1234));
  EXPECT_NE(stream_for(1234), stream_for(1235));
}

TEST(MessageSerialization, RejectsTruncatedAndNonMessageFrames) {
  Message message;
  message.payload = PayloadVec({1.0});
  const auto bytes = core::serialize_message(message, 0, false);
  EXPECT_THROW(
      (void)core::deserialize_message(bytes.data(), bytes.size() - 1),
      std::runtime_error);

  std::vector<std::uint8_t> control;
  encode_frame(WireFrame::control(FrameKind::kBarrierMarker, 1), control);
  EXPECT_THROW(
      (void)core::deserialize_message(control.data(), control.size()),
      std::runtime_error);
}

// --- process worlds --------------------------------------------------------

// Every rank sends its rank to the next rank around the world ring (always
// crossing the process boundary for ranks at block edges), then allreduces
// a one-hot; each rank also stamps its shared rank_state slot.
std::vector<double> ring_smoke_body(CommWorld& world,
                                    const WorldLayout& layout,
                                    std::uint32_t* rank_state) {
  const int n = static_cast<int>(layout.global_size);
  double received_sum = 0.0;
  world.run([&](Comm& comm) {
    const int next = (comm.rank() + 1) % n;
    const int prev = (comm.rank() + n - 1) % n;
    comm.send(next, /*tag=*/7, {static_cast<double>(comm.rank())});
    const Message m = comm.recv(prev, 7);
    rank_state[comm.rank()] = static_cast<std::uint32_t>(m.payload[0]);

    std::vector<double> one(1, 1.0);
    const auto total = comm.allreduce_sum(std::move(one));
    if (comm.rank() == static_cast<int>(layout.local_begin())) {
      received_sum = total.at(0);
    }
    comm.barrier();
  });
  return {received_sum};
}

class ProcessWorldSmoke : public ::testing::TestWithParam<TransportKind> {};

TEST_P(ProcessWorldSmoke, RingExchangeAndSharedState) {
  ProcessWorldConfig config;
  config.global_ranks = 10;  // uneven blocks: 4 + 3 + 3
  config.processes = 3;
  config.kind = GetParam();
  config.timeout_seconds = 60.0;

  const auto outcome = run_process_world(config, ring_smoke_body);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_EQ(outcome.values.size(), 3u);
  for (const auto& values : outcome.values) {
    ASSERT_EQ(values.size(), 1u);
    EXPECT_DOUBLE_EQ(values[0], 10.0);  // allreduce of one-hot ones
  }
  ASSERT_EQ(outcome.rank_state.size(), 10u);
  for (std::uint32_t rank = 0; rank < 10; ++rank) {
    EXPECT_EQ(outcome.rank_state[rank], (rank + 10 - 1) % 10) << rank;
  }
}

TEST_P(ProcessWorldSmoke, KilledWorkerFailsTheWorldInsteadOfHanging) {
  ProcessWorldConfig config;
  config.global_ranks = 8;
  config.processes = 2;
  config.kind = GetParam();
  // Backstop only; abort propagation must beat it by a wide margin.
  config.timeout_seconds = 60.0;

  const auto outcome = run_process_world(
      config, [](CommWorld& world, const WorldLayout& layout,
                 std::uint32_t* /*rank_state*/) -> std::vector<double> {
        world.run([&](Comm& comm) {
          comm.barrier();  // everyone reaches the same point first
          if (layout.process_index == 1 &&
              comm.rank() == static_cast<int>(layout.local_begin())) {
            std::raise(SIGKILL);  // simulate a crashed worker process
          }
          // Survivors block on traffic only the dead process could send;
          // only abort propagation can release them.
          comm.barrier();
          (void)comm.allreduce_sum({1.0});
        });
        return {1.0};
      });
  EXPECT_FALSE(outcome.ok);
  EXPECT_FALSE(outcome.error.empty());
}

INSTANTIATE_TEST_SUITE_P(Fabrics, ProcessWorldSmoke,
                         ::testing::Values(TransportKind::kShmRing,
                                           TransportKind::kUds),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(ProcessWorld, RejectsInProcessKind) {
  ProcessWorldConfig config;
  config.kind = TransportKind::kInProcess;
  EXPECT_THROW(run_process_world(config,
                                 [](CommWorld&, const WorldLayout&,
                                    std::uint32_t*) {
                                   return std::vector<double>{};
                                 }),
               TransportError);
}

TEST(TransportKindParsing, AcceptsAliasesAndRejectsGarbage) {
  EXPECT_EQ(parse_transport_kind("inproc"), TransportKind::kInProcess);
  EXPECT_EQ(parse_transport_kind("in-process"), TransportKind::kInProcess);
  EXPECT_EQ(parse_transport_kind("shm"), TransportKind::kShmRing);
  EXPECT_EQ(parse_transport_kind("shm-ring"), TransportKind::kShmRing);
  EXPECT_EQ(parse_transport_kind("uds"), TransportKind::kUds);
  EXPECT_EQ(parse_transport_kind("socket"), TransportKind::kUds);
  EXPECT_THROW((void)parse_transport_kind("carrier-pigeon"),
               std::invalid_argument);
}

}  // namespace
}  // namespace mwr::parallel::transport
