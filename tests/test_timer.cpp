// Unit tests for util/timer.
#include <gtest/gtest.h>

#include <thread>

#include "util/timer.hpp"

namespace mwr::util {
namespace {

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GE(timer.elapsed_ms(), 25);
  EXPECT_GE(timer.elapsed_seconds(), 0.025);
  EXPECT_LT(timer.elapsed_seconds(), 5.0);
}

TEST(WallTimer, RestartResets) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  timer.restart();
  EXPECT_LT(timer.elapsed_ms(), 25);
}

TEST(WallTimer, IsMonotone) {
  WallTimer timer;
  double last = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = timer.elapsed_seconds();
    EXPECT_GE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace mwr::util
