// The campaign server, end to end (minus the socket — that layer is
// tests/test_serve_control.cpp): payload/checkpoint codecs, DRR
// fairness invariants, multi-tenant multiplexing over the oracle hub,
// and the headline durability pin — checkpoint, kill, resume, and the
// trajectory hash is bit-identical to the uninterrupted run.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apr/campaign.hpp"
#include "apr/campaign_session.hpp"
#include "apr/outcome_json.hpp"
#include "obs/registry.hpp"
#include "serve/checkpoint.hpp"
#include "serve/checkpoint_writer.hpp"
#include "serve/control.hpp"
#include "serve/oracle_hub.hpp"
#include "serve/payload_codec.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"

namespace mwr::serve {
namespace {

// A small but real campaign over a named scenario: completes in tens of
// milliseconds yet exercises precompute, revalidation, and online MWU.
SubmitRequest small_request(const std::string& scenario,
                            std::uint64_t seed) {
  SubmitRequest request;
  request.scenario = scenario;
  request.bugs = 2;
  request.pool_target = 150;
  request.pool_attempts = 10000;
  request.pool_seed = 11;
  request.arms = 16;
  request.agents = 4;
  request.max_count = 128;
  request.max_iterations = 60;
  request.repair_seed = seed;
  return request;
}

// --- payload codec ------------------------------------------------------

TEST(PayloadCodec, RoundTripsScalarsStringsAndExtremes) {
  PayloadWriter w;
  w.u64(0);
  w.u64(std::numeric_limits<std::uint64_t>::max());
  w.u64(0x123456789abcdef0ull);
  w.f64(-0.0);
  w.f64(1.0 / 3.0);
  w.boolean(true);
  w.str("");
  w.str("gzip-2009-08-16 \x01\x7f");
  const std::vector<double> payload = w.take();

  PayloadReader r(payload);
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.u64(), 0x123456789abcdef0ull);
  EXPECT_EQ(r.f64(), -0.0);
  EXPECT_EQ(r.f64(), 1.0 / 3.0);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "gzip-2009-08-16 \x01\x7f");
  EXPECT_TRUE(r.done());
}

TEST(PayloadCodec, ThrowsOnTruncationAndMalformedHalves) {
  PayloadReader empty({});
  EXPECT_THROW((void)empty.u64(), std::runtime_error);

  const std::vector<double> bad_half = {1.5, 0.0};
  PayloadReader r(bad_half);
  EXPECT_THROW((void)r.u64(), std::runtime_error);

  PayloadWriter w;
  w.u64(100);  // announces a 100-char string that is not there
  const std::vector<double> truncated = w.take();  // keep the span alive
  PayloadReader s(truncated);
  EXPECT_THROW((void)s.str(), std::runtime_error);
}

// --- control-plane codecs -----------------------------------------------

TEST(ControlCodec, SubmitRoundTrip) {
  SubmitRequest request = small_request("Closure13", 99);
  request.tests = 24;
  request.mwu = 3;
  request.grow_suite = false;
  const SubmitRequest decoded =
      decode_submit_request(encode_submit_request(request));
  EXPECT_EQ(decoded, request);
}

TEST(ControlCodec, RepliesRoundTrip) {
  const SubmitReply submit{true, 42, 17};
  EXPECT_EQ(decode_submit_reply(encode_submit_reply(submit)), submit);

  StatusReply status;
  status.known = true;
  status.bug_index = 3;
  status.bugs_total = 5;
  status.online_cycles = 123;
  status.online_probes = 4567;
  status.repaired = 2;
  status.trajectory_hash = 0xfeedfacecafebeefull;
  EXPECT_EQ(decode_status_reply(encode_status_reply(9, status)), status);

  ResultReply result;
  result.ready = true;
  result.campaign_id = 7;
  result.outcome_json = "{\"schema\": \"mwr-campaign-outcome-v1\"}\n";
  EXPECT_EQ(decode_result_reply(encode_result_reply(result)), result);

  const CheckpointReply checkpoint{8192, 3};
  EXPECT_EQ(decode_checkpoint_reply(encode_checkpoint_reply(checkpoint)),
            checkpoint);

  EXPECT_EQ(decode_shutdown_reply(encode_shutdown_reply(12)), 12u);
}

TEST(ControlCodec, RejectsWrongDirectionAndKind) {
  const auto request = encode_submit_request(SubmitRequest{});
  EXPECT_THROW((void)decode_submit_reply(request), std::runtime_error);
  EXPECT_THROW((void)decode_status_request(request), std::runtime_error);
}

TEST(ControlCodec, PlanForcesSingleThreadedPhases) {
  SubmitRequest request = small_request("Math8", 5);
  const CampaignPlan plan = plan_campaign(request);
  EXPECT_EQ(plan.spec.name, "Math8");
  EXPECT_EQ(plan.config.pool.threads, 1u);
  EXPECT_EQ(plan.config.repair.eval_threads, 1u);
  EXPECT_EQ(plan.config.bugs, 2u);

  request.scenario = "no-such-program";
  EXPECT_THROW((void)plan_campaign(request), std::invalid_argument);
}

TEST(ControlCodec, PlanRejectsDegenerateRepairKnobs) {
  // Every knob a later phase would throw on (MwRepair's arms/max_count
  // guards, the MWU agent count, the oracle's 64-test bitmask) must be
  // refused at SUBMIT: a submission that passed admission and then threw
  // inside an epoch fiber used to take down the whole daemon.
  const SubmitRequest valid = small_request("Math8", 5);
  (void)plan_campaign(valid);  // baseline: the template itself is fine

  SubmitRequest request = valid;
  request.bugs = 0;
  EXPECT_THROW((void)plan_campaign(request), std::invalid_argument);
  request = valid;
  request.arms = 0;
  EXPECT_THROW((void)plan_campaign(request), std::invalid_argument);
  request = valid;
  request.max_count = 0;
  EXPECT_THROW((void)plan_campaign(request), std::invalid_argument);
  request = valid;
  request.agents = 0;
  EXPECT_THROW((void)plan_campaign(request), std::invalid_argument);
  request = valid;
  request.max_iterations = 0;
  EXPECT_THROW((void)plan_campaign(request), std::invalid_argument);
  request = valid;
  request.tests = 65;
  EXPECT_THROW((void)plan_campaign(request), std::invalid_argument);
}

// --- deficit-round-robin scheduler --------------------------------------

TEST(DeficitScheduler, EveryResidentCampaignIsGrantedEveryEpoch) {
  DeficitScheduler scheduler(/*quantum=*/4);
  scheduler.admit(3);
  scheduler.admit(1);
  scheduler.admit(2);
  const auto grants = scheduler.begin_epoch();
  ASSERT_EQ(grants.size(), 3u);
  // Deterministic ascending-id order, every budget >= quantum >= 1.
  EXPECT_EQ(grants[0].id, 1u);
  EXPECT_EQ(grants[1].id, 2u);
  EXPECT_EQ(grants[2].id, 3u);
  for (const auto& grant : grants) EXPECT_GE(grant.budget, 4u);
}

TEST(DeficitScheduler, DeficitCarriesOverAndIsCapped) {
  DeficitScheduler scheduler(/*quantum=*/4, /*max_carry_quanta=*/2);
  scheduler.admit(1);
  // Consume nothing for many epochs: deficit accrues but caps at 2 quanta.
  for (int epoch = 0; epoch < 5; ++epoch) {
    const auto grants = scheduler.begin_epoch();
    ASSERT_EQ(grants.size(), 1u);
    scheduler.settle(1, 0);
  }
  const auto grants = scheduler.begin_epoch();
  EXPECT_EQ(grants[0].budget, 8u);  // capped, not 24
  // Full consumption resets the deficit.
  scheduler.settle(1, 8);
  EXPECT_EQ(scheduler.deficit(1), 0u);
}

TEST(DeficitScheduler, BoundsOveruseAndDuplicateAdmission) {
  DeficitScheduler scheduler(/*quantum=*/2);
  scheduler.admit(1);
  EXPECT_THROW(scheduler.admit(1), std::invalid_argument);
  (void)scheduler.begin_epoch();
  EXPECT_THROW(scheduler.settle(1, 99), std::logic_error);
  scheduler.remove(1);
  EXPECT_EQ(scheduler.resident(), 0u);
  scheduler.settle(1, 5);  // unknown id: ignored, not fatal
}

// --- session refactor identity ------------------------------------------

TEST(CampaignSessionServe, BudgetPartitioningDoesNotChangeTheTrajectory) {
  const CampaignPlan plan = plan_campaign(small_request("units", 21));

  apr::CampaignSession one_shot(plan.spec, plan.config);
  while (!one_shot.done())
    (void)one_shot.step(std::numeric_limits<std::size_t>::max());

  apr::CampaignSession drip(plan.spec, plan.config);
  while (!drip.done()) (void)drip.step(1);

  apr::CampaignSession chunked(plan.spec, plan.config);
  while (!chunked.done()) (void)chunked.step(3);

  EXPECT_EQ(one_shot.trajectory_hash(), drip.trajectory_hash());
  EXPECT_EQ(one_shot.trajectory_hash(), chunked.trajectory_hash());
  EXPECT_EQ(apr::outcome_to_json(one_shot.outcome()).dump(2),
            apr::outcome_to_json(drip.outcome()).dump(2));
}

// --- checkpoint codec ---------------------------------------------------

TEST(Checkpoint, CodecRoundTripsAMidCampaignSnapshot) {
  const SubmitRequest request = small_request("libtiff-2005-12-14", 31);
  const CampaignPlan plan = plan_campaign(request);
  apr::CampaignSession session(plan.spec, plan.config);
  // Step past precompute and into the online phase so the snapshot
  // carries a working pool and live RNG/MWU state.
  for (int i = 0; i < 8 && !session.done(); ++i) (void)session.step(1);

  CampaignCheckpoint checkpoint;
  checkpoint.campaign_id = 77;
  checkpoint.request = request;
  checkpoint.snapshot = session.snapshot();
  ASSERT_TRUE(checkpoint.snapshot.has_repair_state);

  const std::vector<std::uint8_t> bytes = encode_checkpoint(checkpoint);
  const CampaignCheckpoint decoded = decode_checkpoint(bytes);

  EXPECT_EQ(decoded.campaign_id, 77u);
  EXPECT_EQ(decoded.request, request);
  const apr::CampaignSnapshot& a = checkpoint.snapshot;
  const apr::CampaignSnapshot& b = decoded.snapshot;
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.phase, b.phase);
  EXPECT_EQ(a.bug_index, b.bug_index);
  EXPECT_EQ(a.current_tests, b.current_tests);
  EXPECT_EQ(a.trajectory_hash, b.trajectory_hash);
  EXPECT_EQ(a.working_pool, b.working_pool);
  EXPECT_EQ(a.repair.rng_state, b.repair.rng_state);
  EXPECT_EQ(a.repair.strategy, b.repair.strategy);  // bit-exact doubles
  EXPECT_EQ(a.repair.iterations, b.repair.iterations);
}

TEST(Checkpoint, DecoderRejectsCorruption) {
  CampaignCheckpoint checkpoint;
  checkpoint.campaign_id = 1;
  checkpoint.request = small_request("units", 1);
  std::vector<std::uint8_t> bytes = encode_checkpoint(checkpoint);
  EXPECT_THROW(
      (void)decode_checkpoint({bytes.data(), bytes.size() / 2}),
      std::runtime_error);
  bytes[bytes.size() - 1] ^= 0xff;
  EXPECT_THROW((void)decode_checkpoint(bytes), std::runtime_error);
}

// --- the durability pin: kill mid-campaign, resume, identical hash ------

TEST(Checkpoint, ResumeIsBitIdenticalToUninterruptedAtEverySeed) {
  for (const std::uint64_t seed : {2ull, 29ull, 303ull}) {
    const SubmitRequest request = small_request("gzip-2009-09-26", seed);
    const CampaignPlan plan = plan_campaign(request);

    apr::CampaignSession uninterrupted(plan.spec, plan.config);
    while (!uninterrupted.done())
      (void)uninterrupted.step(std::numeric_limits<std::size_t>::max());

    // Run N units, snapshot ("the daemon died after cycle N"), resume a
    // fresh session from the snapshot, and finish.
    apr::CampaignSession first_life(plan.spec, plan.config);
    for (int i = 0; i < 6 && !first_life.done(); ++i)
      (void)first_life.step(1);
    const std::vector<std::uint8_t> bytes = encode_checkpoint(
        {/*campaign_id=*/1, request, first_life.snapshot()});

    const CampaignCheckpoint loaded = decode_checkpoint(bytes);
    const CampaignPlan replan = plan_campaign(loaded.request);
    const std::unique_ptr<apr::CampaignSession> second_life =
        apr::CampaignSession::resume(loaded.snapshot, replan.spec,
                                     replan.config);
    while (!second_life->done())
      (void)second_life->step(std::numeric_limits<std::size_t>::max());

    EXPECT_EQ(second_life->trajectory_hash(), uninterrupted.trajectory_hash())
        << "seed " << seed;
    EXPECT_EQ(apr::outcome_to_json(second_life->outcome()).dump(2),
              apr::outcome_to_json(uninterrupted.outcome()).dump(2))
        << "seed " << seed;
  }
}

TEST(Checkpoint, ResumeRejectsTheWrongCampaignDefinition) {
  const SubmitRequest request = small_request("units", 3);
  const CampaignPlan plan = plan_campaign(request);
  apr::CampaignSession session(plan.spec, plan.config);
  (void)session.step(1);
  const apr::CampaignSnapshot snapshot = session.snapshot();

  CampaignPlan other = plan_campaign(small_request("Math80", 3));
  EXPECT_THROW((void)apr::CampaignSession::resume(snapshot, other.spec,
                                                  other.config),
               std::invalid_argument);
}

// --- oracle hub ---------------------------------------------------------

TEST(OracleHub, SharesPoolsAndOraclesAcrossTenants) {
  OracleHub hub;
  const CampaignPlan plan = plan_campaign(small_request("units", 8));

  const auto pool_a = hub.base_pool(plan.spec, plan.config.pool);
  const auto pool_b = hub.base_pool(plan.spec, plan.config.pool);
  EXPECT_EQ(pool_a.pool.get(), pool_b.pool.get());
  EXPECT_GT(pool_a.precompute_runs, 0u);
  EXPECT_EQ(pool_a.precompute_runs, pool_b.precompute_runs);

  datasets::ScenarioSpec bug = plan.spec;
  bug.bug_id = 0;
  const auto lease_a = hub.oracle_for(bug);
  const auto lease_b = hub.oracle_for(bug);
  EXPECT_TRUE(lease_a.shared);
  EXPECT_EQ(lease_a.oracle.get(), lease_b.oracle.get());

  bug.bug_id = 1;  // a different bug is a different oracle
  const auto lease_c = hub.oracle_for(bug);
  EXPECT_NE(lease_a.oracle.get(), lease_c.oracle.get());

  const OracleHub::Stats stats = hub.stats();
  EXPECT_EQ(stats.pool_builds, 1u);
  EXPECT_EQ(stats.pool_hits, 1u);
  EXPECT_EQ(stats.oracle_builds, 2u);
  EXPECT_EQ(stats.oracle_hits, 1u);
}

TEST(OracleHub, FailedBuildsAreRetriedNotCachedForever) {
  OracleHub hub;
  datasets::ScenarioSpec bad = datasets::scenario_by_name("units");
  bad.tests = 65;  // beyond the oracle's 64-test bitmask: the build throws

  // Each lookup must attempt a fresh build and surface the builder's own
  // error.  A poisoned cache entry would turn the second call into a
  // std::runtime_error("oracle build failed") forever.
  EXPECT_THROW((void)hub.oracle_for(bad), std::invalid_argument);
  EXPECT_THROW((void)hub.oracle_for(bad), std::invalid_argument);
  EXPECT_EQ(hub.stats().oracle_builds, 2u);

  const apr::PoolConfig pool_config;
  EXPECT_THROW((void)hub.base_pool(bad, pool_config), std::invalid_argument);
  EXPECT_THROW((void)hub.base_pool(bad, pool_config), std::invalid_argument);
  EXPECT_EQ(hub.stats().pool_builds, 2u);

  // And a failure leaves the hub fully serviceable for valid specs.
  bad.tests = 12;
  const auto lease = hub.oracle_for(bad);
  EXPECT_NE(lease.oracle, nullptr);
}

TEST(OracleHub, SharedServicesPreserveTheSingleTenantTrajectory) {
  const CampaignPlan plan = plan_campaign(small_request("Chart26", 13));

  apr::CampaignSession isolated(plan.spec, plan.config);
  while (!isolated.done())
    (void)isolated.step(std::numeric_limits<std::size_t>::max());

  OracleHub hub;
  apr::CampaignSession tenant_a(plan.spec, plan.config, &hub);
  apr::CampaignSession tenant_b(plan.spec, plan.config, &hub);
  while (!tenant_a.done())
    (void)tenant_a.step(std::numeric_limits<std::size_t>::max());
  while (!tenant_b.done())
    (void)tenant_b.step(std::numeric_limits<std::size_t>::max());

  // Shared oracles and pools must not perturb the search or the ledger.
  EXPECT_EQ(tenant_a.trajectory_hash(), isolated.trajectory_hash());
  EXPECT_EQ(tenant_b.trajectory_hash(), isolated.trajectory_hash());
  EXPECT_EQ(apr::outcome_to_json(tenant_a.outcome()).dump(2),
            apr::outcome_to_json(isolated.outcome()).dump(2));
}

// --- the server ---------------------------------------------------------

TEST(CampaignServer, MultiplexesMixedFamiliesToCompletionWithoutStarvation) {
  ServerConfig config;
  config.max_resident = 64;
  config.quantum = 8;
  config.workers = 4;
  CampaignServer server(config);

  const std::vector<std::string> families = {
      "units", "gzip-2009-08-16", "Chart26", "Math8", "libtiff-2005-12-14"};
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    const auto id = server.submit(
        small_request(families[static_cast<std::size_t>(i) % families.size()],
                      100 + static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  EXPECT_EQ(server.resident(), 10u);

  server.drain();
  EXPECT_EQ(server.resident(), 0u);
  EXPECT_EQ(server.completed(), 10u);
  EXPECT_EQ(server.starved_epochs(), 0u);  // the zero-starvation invariant
  EXPECT_GT(server.epochs(), 0u);
  EXPECT_FALSE(server.probe_latency_seconds().empty());

  // Every campaign finished, has a status, and yields schema'd JSON.
  for (const std::uint64_t id : ids) {
    const StatusReply status = server.status(id);
    EXPECT_TRUE(status.known);
    EXPECT_TRUE(status.done);
    EXPECT_EQ(status.bugs_total, 2u);
    EXPECT_NE(status.trajectory_hash, 0u);
    const ResultReply result = server.result(id);
    ASSERT_TRUE(result.ready);
    EXPECT_NE(result.outcome_json.find("mwr-campaign-outcome-v1"),
              std::string::npos);
  }

  // Ten campaigns over five families: the hub interned five pools.
  EXPECT_EQ(server.hub().stats().pool_builds, 5u);
  EXPECT_GE(server.hub().stats().pool_hits, 5u);
}

TEST(CampaignServer, ServedResultMatchesSingleShotByteForByte) {
  const SubmitRequest request = small_request("lighttpd-1806-1807", 55);

  ServerConfig config;
  config.workers = 2;
  CampaignServer server(config);
  const auto id = server.submit(request);
  ASSERT_TRUE(id.has_value());
  server.drain();
  const ResultReply served = server.result(*id);
  ASSERT_TRUE(served.ready);

  // The one-schema satellite: a served campaign's result document equals
  // repair_tool's --outcome-out for the same plan, byte for byte.
  const CampaignPlan plan = plan_campaign(request);
  const apr::CampaignOutcome solo = apr::run_campaign(plan.spec, plan.config);
  EXPECT_EQ(served.outcome_json, apr::outcome_to_json(solo).dump(2) + "\n");
}

TEST(CampaignServer, AdmissionControlRejectsBeyondTheCap) {
  ServerConfig config;
  config.max_resident = 2;
  config.workers = 2;
  CampaignServer server(config);
  ASSERT_TRUE(server.submit(small_request("units", 1)).has_value());
  ASSERT_TRUE(server.submit(small_request("units", 2)).has_value());
  EXPECT_FALSE(server.submit(small_request("units", 3)).has_value());
  server.drain();
  // Capacity freed: admission opens again.
  EXPECT_TRUE(server.submit(small_request("units", 4)).has_value());
  server.drain();
}

TEST(CampaignServer, MalformedSubmissionIsRejectedWithoutResidue) {
  ServerConfig config;
  config.workers = 2;
  CampaignServer server(config);
  SubmitRequest bad = small_request("units", 1);
  bad.arms = 0;
  EXPECT_THROW((void)server.submit(bad), std::invalid_argument);
  // Rejection is a client error, not daemon state: nothing resident, no
  // scheduler slot, and a well-formed campaign still runs to completion.
  EXPECT_EQ(server.resident(), 0u);
  EXPECT_FALSE(server.run_epoch());
  ASSERT_TRUE(server.submit(small_request("units", 2)).has_value());
  server.drain();
  EXPECT_EQ(server.completed(), 1u);
  EXPECT_EQ(server.failed_campaigns(), 0u);
}

TEST(CampaignServer, ScopedMetricsExposePerCampaignViews) {
  ServerConfig config;
  config.workers = 2;
  CampaignServer server(config);
  const auto id = server.submit(small_request("Closure22", 77));
  ASSERT_TRUE(id.has_value());
  server.drain();

  const std::string prefix = "campaign/" + std::to_string(*id) + "/";
  const obs::JsonValue view =
      obs::MetricsRegistry::global().to_json_filtered(prefix);
  const std::string dumped = view.dump(0);
  EXPECT_NE(dumped.find(prefix + "online.cycles"), std::string::npos);
  EXPECT_NE(dumped.find(prefix + "bugs_attempted"), std::string::npos);
  EXPECT_NE(dumped.find(prefix + "done"), std::string::npos);
  // The unfiltered snapshot still carries the serve-level counters.
  const std::string all =
      obs::MetricsRegistry::global().to_json_string();
  EXPECT_NE(all.find("serve.epochs"), std::string::npos);
  EXPECT_NE(all.find("serve.starved_epochs"), std::string::npos);
}

TEST(CampaignServer, CheckpointRestoreResumesBitIdentically) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "mwr-serve-ckpt-test";
  std::filesystem::remove_all(dir);

  const std::vector<std::string> families = {"units", "gzip-2009-09-26",
                                             "Math80"};
  // Reference: the same submissions run to completion uninterrupted.
  std::vector<std::uint64_t> reference_hashes;
  std::vector<std::string> reference_json;
  {
    ServerConfig config;
    config.workers = 2;
    CampaignServer reference(config);
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < families.size(); ++i)
      ids.push_back(*reference.submit(small_request(families[i], 40 + i)));
    reference.drain();
    for (const std::uint64_t id : ids) {
      reference_hashes.push_back(reference.status(id).trajectory_hash);
      reference_json.push_back(reference.result(id).outcome_json);
    }
  }

  // First daemon life: a few epochs, checkpoint, "kill -9".
  {
    ServerConfig config;
    config.workers = 2;
    // Quantum 1 keeps every campaign mid-flight after three epochs; a
    // wider quantum would let the small ones finish before the snapshot.
    config.quantum = 1;
    config.checkpoint_dir = dir.string();
    CampaignServer first_life(config);
    for (std::size_t i = 0; i < families.size(); ++i)
      ASSERT_TRUE(
          first_life.submit(small_request(families[i], 40 + i)).has_value());
    for (int epoch = 0; epoch < 3 && first_life.resident() > 0; ++epoch)
      (void)first_life.run_epoch();
    ASSERT_EQ(first_life.resident(), families.size())
        << "campaigns finished before the mid-flight checkpoint";
    const CheckpointReply reply = first_life.checkpoint_all();
    EXPECT_EQ(reply.campaigns, first_life.resident());
    EXPECT_GT(reply.bytes, 0u);
    // Destructor without drain = abrupt death.
  }

  // Second daemon life: restore and finish.
  {
    ServerConfig config;
    config.workers = 2;
    config.checkpoint_dir = dir.string();
    CampaignServer second_life(config);
    const std::size_t restored = second_life.restore_from_dir();
    EXPECT_EQ(restored, families.size());
    second_life.drain();
    EXPECT_EQ(second_life.starved_epochs(), 0u);

    for (std::size_t i = 0; i < families.size(); ++i) {
      const std::uint64_t id = i + 1;  // ids are stable across lives
      const StatusReply status = second_life.status(id);
      ASSERT_TRUE(status.known && status.done) << "campaign " << id;
      EXPECT_EQ(status.trajectory_hash, reference_hashes[i])
          << "campaign " << id << " diverged after resume";
      EXPECT_EQ(second_life.result(id).outcome_json, reference_json[i]);
    }
    // Finished campaigns clean their checkpoint files up.
    std::size_t remaining = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir))
      remaining += entry.path().extension() == ".ckpt" ? 1u : 0u;
    EXPECT_EQ(remaining, 0u);
  }
  std::filesystem::remove_all(dir);
}

// --- epoch pipeline: bounded telemetry & async durability ---------------

std::vector<std::uint8_t> read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::size_t count_ckpt_files(const std::filesystem::path& dir) {
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    count += entry.path().extension() == ".ckpt" ? 1u : 0u;
  return count;
}

TEST(CampaignServer, ProbeLatencyWindowStaysBounded) {
  ServerConfig config;
  config.workers = 2;
  config.quantum = 1;  // one unit per campaign-epoch: maximum samples.
  CampaignServer server(config);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    SubmitRequest request = small_request("Math80", seed);
    request.max_iterations = 200;
    ids.push_back(*server.submit(request));
  }
  server.drain();

  // The unbounded predecessor kept one sample per campaign-epoch forever.
  // At quantum 1 every online cycle is one such epoch; prove the run
  // produced more samples than the window holds, then pin the bound.
  std::uint64_t unit_epochs = 0;
  for (const std::uint64_t id : ids)
    unit_epochs += server.status(id).online_cycles;
  // online_cycles counts setup units too; at most 4 per campaign are
  // probe-free, so subtract them before comparing against the window.
  ASSERT_GT(unit_epochs, CampaignServer::kLatencyWindowCapacity + 4 * ids.size())
      << "load too small to overflow the window; raise campaigns or iterations";
  const std::vector<double> window = server.probe_latency_seconds();
  EXPECT_EQ(window.size(), CampaignServer::kLatencyWindowCapacity);
  for (const double seconds : window) EXPECT_GE(seconds, 0.0);
}

TEST(CheckpointWriter, LatestWinsCoalescingAndRemoveOrdering) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "mwr-ckpt-writer-test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "campaign-1.ckpt").string();
  {
    CheckpointWriter writer;
    for (int round = 0; round < 64; ++round)
      writer.enqueue_write(
          1, path,
          std::vector<std::uint8_t>(16, static_cast<std::uint8_t>(round)));
    writer.flush();
    // Latest-wins: whatever was executed last carries the newest bytes,
    // and every enqueue either executed or was coalesced into a newer one.
    const std::vector<std::uint8_t> bytes = read_file_bytes(path);
    ASSERT_EQ(bytes.size(), 16u);
    for (const std::uint8_t byte : bytes) EXPECT_EQ(byte, 63u);
    const CheckpointWriter::Stats stats = writer.stats();
    EXPECT_EQ(stats.failures, 0u);
    EXPECT_GE(stats.writes, 1u);
    EXPECT_EQ(stats.writes + stats.coalesced, 64u);

    // A remove after writes deletes the file — and a remove enqueued
    // while a write is still pending replaces it (no resurrection).
    writer.enqueue_write(1, path, std::vector<std::uint8_t>(8, 0xff));
    writer.enqueue_remove(1, path);
    writer.flush();
    EXPECT_FALSE(std::filesystem::exists(path));
  }
  {
    // The destructor drains the queue: no flush, yet the write lands.
    CheckpointWriter writer;
    writer.enqueue_write(2, (dir / "campaign-2.ckpt").string(),
                         std::vector<std::uint8_t>{1, 2, 3});
  }
  EXPECT_EQ(read_file_bytes(dir / "campaign-2.ckpt"),
            (std::vector<std::uint8_t>{1, 2, 3}));
  std::filesystem::remove_all(dir);
}

TEST(CampaignServer, AsyncCheckpointsRaceRetirementWithoutResurrection) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "mwr-serve-churn-test";
  std::filesystem::remove_all(dir);

  ServerConfig config;
  config.workers = 2;
  config.quantum = 4;
  config.checkpoint_dir = dir.string();
  config.checkpoint_every = 1;  // every epoch queues dirty writes...
  CampaignServer server(config);
  for (std::uint64_t seed = 0; seed < 6; ++seed)
    ASSERT_TRUE(server.submit(small_request("units", seed)).has_value());
  // ...and every retirement queues a remove that must cancel any write
  // still in flight for that campaign.  Drain under maximum churn.
  while (server.resident() > 0) (void)server.run_epoch();
  EXPECT_EQ(server.completed(), 6u);
  EXPECT_EQ(server.failed_campaigns(), 0u);

  // The explicit checkpoint is the durability barrier: after it, no
  // retired campaign's file may have been resurrected by a stale write.
  const CheckpointReply reply = server.checkpoint_all();
  EXPECT_EQ(reply.campaigns, 0u);
  EXPECT_EQ(reply.bytes, 0u);
  EXPECT_EQ(count_ckpt_files(dir), 0u);
  std::filesystem::remove_all(dir);
}

TEST(CampaignServer, StrayTmpFromKilledFlushIsIgnoredOnRestore) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "mwr-serve-tmp-test";
  std::filesystem::remove_all(dir);

  // First life: one campaign checkpointed mid-flight.
  {
    ServerConfig config;
    config.workers = 2;
    config.quantum = 1;
    config.checkpoint_dir = dir.string();
    CampaignServer first_life(config);
    ASSERT_TRUE(first_life.submit(small_request("units", 9)).has_value());
    for (int epoch = 0; epoch < 2; ++epoch) (void)first_life.run_epoch();
    ASSERT_EQ(first_life.resident(), 1u);
    (void)first_life.checkpoint_all();
  }

  // kill -9 mid-flush leaves only the tmp half of a newer write behind.
  {
    std::ofstream tmp(dir / "campaign-99.ckpt.tmp", std::ios::binary);
    tmp << "truncated by a crash";
  }

  // Second life: the stray tmp is not a checkpoint; the real one resumes.
  ServerConfig config;
  config.workers = 2;
  config.checkpoint_dir = dir.string();
  CampaignServer second_life(config);
  EXPECT_EQ(second_life.restore_from_dir(), 1u);
  EXPECT_EQ(second_life.resident(), 1u);
  second_life.drain();
  EXPECT_EQ(second_life.completed(), 1u);
  EXPECT_EQ(second_life.failed_campaigns(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(CampaignServer, DirtyTrackingSkipsCleanCampaignsAndMatchesSyncBytes) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "mwr-serve-dirty-test";
  std::filesystem::remove_all(dir);

  ServerConfig config;
  config.workers = 2;
  config.quantum = 1;
  config.checkpoint_dir = dir.string();
  CampaignServer server(config);
  ASSERT_TRUE(server.submit(small_request("units", 5)).has_value());
  ASSERT_TRUE(server.submit(small_request("Math80", 6)).has_value());
  for (int epoch = 0; epoch < 3; ++epoch) (void)server.run_epoch();
  ASSERT_EQ(server.resident(), 2u);

  const CheckpointReply first = server.checkpoint_all();
  EXPECT_EQ(first.campaigns, 2u);
  EXPECT_GT(first.bytes, 0u);
  const std::vector<std::uint8_t> bytes_1 =
      read_file_bytes(dir / "campaign-1.ckpt");
  const std::vector<std::uint8_t> bytes_2 =
      read_file_bytes(dir / "campaign-2.ckpt");
  ASSERT_FALSE(bytes_1.empty());
  ASSERT_FALSE(bytes_2.empty());

  // No progress since: both campaigns are clean.  The reply still covers
  // them (their files are current) but serializes nothing, and the files
  // are untouched byte for byte.
  const CheckpointReply second = server.checkpoint_all();
  EXPECT_EQ(second.campaigns, 2u);
  EXPECT_EQ(second.bytes, 0u);
  EXPECT_EQ(read_file_bytes(dir / "campaign-1.ckpt"), bytes_1);
  EXPECT_EQ(read_file_bytes(dir / "campaign-2.ckpt"), bytes_2);

  // The async writer's file equals the synchronous write path's, byte
  // for byte: round-trip the decoded checkpoint through
  // write_checkpoint_file and compare.
  const CampaignCheckpoint decoded =
      read_checkpoint_file((dir / "campaign-1.ckpt").string());
  const std::string sync_path = (dir / "sync-copy.bin").string();
  (void)write_checkpoint_file(decoded, sync_path);
  EXPECT_EQ(read_file_bytes(sync_path), bytes_1);

  // One more epoch re-dirties both; the next checkpoint pays again.
  (void)server.run_epoch();
  const CheckpointReply third = server.checkpoint_all();
  EXPECT_EQ(third.campaigns, 2u);
  EXPECT_GT(third.bytes, 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mwr::serve
