// Unit tests for parallel/comm: SPMD execution, point-to-point messaging,
// collectives, congestion attribution, and error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parallel/comm.hpp"

namespace mwr::parallel {
namespace {

TEST(CommWorld, RejectsZeroRanks) {
  EXPECT_THROW(CommWorld(0), std::invalid_argument);
}

TEST(CommWorld, RunsOneBodyPerRank) {
  CommWorld world(6);
  std::atomic<int> mask{0};
  world.run([&](Comm& comm) { mask.fetch_or(1 << comm.rank()); });
  EXPECT_EQ(mask.load(), 0b111111);
}

TEST(CommWorld, RankAndSizeAreConsistent) {
  CommWorld world(4);
  world.run([&](Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 4);
  });
}

TEST(Comm, PointToPointRoundTrip) {
  CommWorld world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, {1.0, 2.0, 3.0});
      const Message reply = comm.recv(1, 6);
      EXPECT_DOUBLE_EQ(reply.payload.at(0), 6.0);
    } else {
      const Message m = comm.recv(0, 5);
      double sum = std::accumulate(m.payload.begin(), m.payload.end(), 0.0);
      comm.send(0, 6, {sum});
    }
  });
}

TEST(Comm, SendToBadDestinationThrows) {
  CommWorld world(2);
  EXPECT_THROW(world.run([&](Comm& comm) {
    if (comm.rank() == 0) comm.send(9, 0, {});
  }),
               std::out_of_range);
}

TEST(Comm, BodyExceptionPropagatesToCaller) {
  CommWorld world(3);
  EXPECT_THROW(world.run([&](Comm& comm) {
    if (comm.rank() == 1) throw std::runtime_error("rank 1 failed");
  }),
               std::runtime_error);
}

TEST(Comm, BroadcastDeliversRootPayloadEverywhere) {
  CommWorld world(5);
  world.run([&](Comm& comm) {
    std::vector<double> payload;
    if (comm.rank() == 2) payload = {4.0, 5.0};
    const auto result = comm.broadcast(2, std::move(payload));
    ASSERT_EQ(result.size(), 2u);
    EXPECT_DOUBLE_EQ(result[0], 4.0);
    EXPECT_DOUBLE_EQ(result[1], 5.0);
  });
}

TEST(Comm, GatherCollectsByRank) {
  CommWorld world(4);
  world.run([&](Comm& comm) {
    const auto all =
        comm.gather(0, {static_cast<double>(comm.rank() * 10)});
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)].at(0), r * 10.0);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, AllreduceSumsElementwiseOnEveryRank) {
  CommWorld world(4);
  world.run([&](Comm& comm) {
    const double r = static_cast<double>(comm.rank());
    const auto sum = comm.allreduce_sum({r, 1.0});
    ASSERT_EQ(sum.size(), 2u);
    EXPECT_DOUBLE_EQ(sum[0], 0.0 + 1.0 + 2.0 + 3.0);
    EXPECT_DOUBLE_EQ(sum[1], 4.0);
  });
}

TEST(Comm, BarrierSynchronizesPhases) {
  CommWorld world(4);
  std::atomic<int> phase1{0};
  world.run([&](Comm& comm) {
    phase1.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(phase1.load(), 4);
    comm.barrier();
  });
}

TEST(Comm, CongestionAttributesToDestination) {
  CommWorld world(3);
  world.run([&](Comm& comm) {
    if (comm.rank() != 0) comm.send(0, 1, {});
    comm.barrier();
    if (comm.rank() == 0) {
      while (comm.try_recv()) {
      }
      comm.close_congestion_cycle();
    }
    comm.barrier();
  });
  EXPECT_EQ(world.congestion().total_messages(), 2u);
  EXPECT_DOUBLE_EQ(world.congestion().max_per_cycle().mean(), 2.0);
}

TEST(Comm, BarrierCloseCycleMatchesBracketedClose) {
  // The fused barrier_close_cycle must produce exactly the congestion
  // statistics of the historical barrier / rank-0 close / barrier bracket,
  // while completing one barrier generation per cycle instead of two.
  constexpr std::size_t kRanks = 6;
  constexpr int kCycles = 4;
  const auto pattern = [](Comm& comm, int cycle) {
    // Deterministic skew: in cycle c, rank r sends r + c messages to rank
    // (r + c) % size, so per-cycle maxima vary across cycles.
    for (int i = 0; i < comm.rank() + cycle; ++i) {
      comm.send((comm.rank() + cycle) % comm.size(), 1, {});
    }
    while (comm.try_recv()) {
    }
  };

  CommWorld bracketed(kRanks);
  bracketed.run([&](Comm& comm) {
    for (int c = 0; c < kCycles; ++c) {
      pattern(comm, c);
      comm.barrier();
      if (comm.rank() == 0) comm.close_congestion_cycle();
      comm.barrier();
    }
  });

  CommWorld fused(kRanks);
  fused.run([&](Comm& comm) {
    for (int c = 0; c < kCycles; ++c) {
      pattern(comm, c);
      comm.barrier_close_cycle();
    }
  });

  EXPECT_EQ(fused.congestion().total_messages(),
            bracketed.congestion().total_messages());
  EXPECT_EQ(fused.congestion().max_per_cycle().count(),
            bracketed.congestion().max_per_cycle().count());
  EXPECT_DOUBLE_EQ(fused.congestion().max_per_cycle().mean(),
                   bracketed.congestion().max_per_cycle().mean());
  EXPECT_DOUBLE_EQ(fused.congestion().max_per_cycle().max(),
                   bracketed.congestion().max_per_cycle().max());
}

TEST(CommWorld, ExplicitPoliciesRunAllRanks) {
  for (const RunPolicy policy :
       {RunPolicy::thread_per_rank(), RunPolicy::superstep(1),
        RunPolicy::superstep(2)}) {
    CommWorld world(5, policy);
    std::atomic<int> mask{0};
    world.run([&](Comm& comm) {
      mask.fetch_or(1 << comm.rank());
      comm.barrier();
    });
    EXPECT_EQ(mask.load(), 0b11111);
  }
}

TEST(Comm, UntrackedSendSkipsCongestion) {
  CommWorld world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_untracked(1, 1, {9.0});
    } else {
      EXPECT_DOUBLE_EQ(comm.recv(0, 1).payload.at(0), 9.0);
    }
  });
  EXPECT_EQ(world.congestion().total_messages(), 0u);
}

TEST(Comm, TryRecvSeesOnlyDeliveredMessages) {
  CommWorld world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 3, {1.0});
    }
    comm.barrier();
    if (comm.rank() == 1) {
      const auto m = comm.try_recv(0, 3);
      ASSERT_TRUE(m.has_value());
      EXPECT_FALSE(comm.try_recv(0, 3).has_value());
    }
  });
}

// Stress sweep: collectives keep working across world sizes.
class CommSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CommSweep, AllreduceIdentityOverManyRounds) {
  CommWorld world(GetParam());
  world.run([&](Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      const auto sum = comm.allreduce_sum({1.0});
      EXPECT_DOUBLE_EQ(sum.at(0), static_cast<double>(comm.size()));
      comm.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CommSweep, ::testing::Values(1, 2, 5, 16));

}  // namespace
}  // namespace mwr::parallel
