// Unit tests for core/mwu: the factory, the run driver, the intractability
// path, and the MwuResult bookkeeping that feeds Tables II-IV.
#include <gtest/gtest.h>

#include "core/mwu.hpp"
#include "datasets/distributions.hpp"

namespace mwr::core {
namespace {

MwuConfig config_for(std::size_t k) {
  MwuConfig config;
  config.num_options = k;
  return config;
}

TEST(MwuKindNames, AreThePapersNames) {
  EXPECT_EQ(to_string(MwuKind::kStandard), "Standard");
  EXPECT_EQ(to_string(MwuKind::kSlate), "Slate");
  EXPECT_EQ(to_string(MwuKind::kDistributed), "Distributed");
}

TEST(MakeMwu, InstantiatesEachKind) {
  const auto config = config_for(16);
  EXPECT_EQ(make_mwu(MwuKind::kStandard, config)->kind(), MwuKind::kStandard);
  EXPECT_EQ(make_mwu(MwuKind::kSlate, config)->kind(), MwuKind::kSlate);
  EXPECT_EQ(make_mwu(MwuKind::kDistributed, config)->kind(),
            MwuKind::kDistributed);
}

TEST(RunMwu, RejectsOracleConfigMismatch) {
  const auto options = datasets::make_random(8, 1);
  const BernoulliOracle oracle(options);
  auto config = config_for(16);  // oracle has 8
  const auto strategy = make_mwu(MwuKind::kStandard, config);
  EXPECT_THROW((void)run_mwu(*strategy, oracle, config, util::RngStream(1)),
               std::invalid_argument);
}

TEST(RunMwu, ConvergesAndReportsBookkeeping) {
  OptionSet options("easy", {0.05, 0.95, 0.05, 0.05});
  const BernoulliOracle oracle(options);
  auto config = config_for(4);
  const auto result =
      run_mwu(MwuKind::kStandard, oracle, config, util::RngStream(2));
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.intractable);
  EXPECT_EQ(result.best_option, 1u);
  EXPECT_GT(result.iterations, 0u);
  EXPECT_LT(result.iterations, config.max_iterations);
  EXPECT_EQ(result.cpus_per_cycle, config.num_agents);
  // Each cycle evaluates one probe per agent.
  EXPECT_EQ(result.evaluations, result.iterations * config.num_agents);
  EXPECT_EQ(result.cpu_iterations(), result.iterations * config.num_agents);
  ASSERT_EQ(result.probabilities.size(), 4u);
  EXPECT_GT(result.probabilities[1], 0.99);
}

TEST(RunMwu, HitsIterationCapWithoutConverging) {
  // All options identical: no algorithm can separate them.
  OptionSet options("flat", std::vector<double>(16, 0.5));
  const BernoulliOracle oracle(options);
  auto config = config_for(16);
  config.max_iterations = 20;
  const auto result =
      run_mwu(MwuKind::kSlate, oracle, config, util::RngStream(3));
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 20u);
}

TEST(RunMwu, DistributedIntractablePathSkipsExecution) {
  const auto options = datasets::make_random(16384, 4);
  const BernoulliOracle oracle(options);
  auto config = config_for(16384);
  const auto result =
      run_mwu(MwuKind::kDistributed, oracle, config, util::RngStream(5));
  EXPECT_TRUE(result.intractable);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.evaluations, 0u);
}

TEST(RunMwu, DeterministicForFixedSeed) {
  const auto options = datasets::make_unimodal(32, 6);
  const BernoulliOracle oracle(options);
  const auto config = config_for(32);
  const auto a = run_mwu(MwuKind::kStandard, oracle, config, util::RngStream(7));
  const auto b = run_mwu(MwuKind::kStandard, oracle, config, util::RngStream(7));
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.best_option, b.best_option);
  EXPECT_EQ(a.probabilities, b.probabilities);
}

// Every algorithm must find the clearly-best option of an easy instance.
class AllKindsEasyInstance : public ::testing::TestWithParam<MwuKind> {};

TEST_P(AllKindsEasyInstance, FindsTheDominantOption) {
  std::vector<double> values(20, 0.05);
  values[13] = 0.95;
  OptionSet options("easy20", std::move(values));
  const BernoulliOracle oracle(options);
  const auto config = config_for(20);
  const auto result = run_mwu(GetParam(), oracle, config, util::RngStream(8));
  EXPECT_TRUE(result.converged) << to_string(GetParam());
  EXPECT_EQ(result.best_option, 13u) << to_string(GetParam());
  EXPECT_GT(options.accuracy_percent(result.best_option), 99.0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllKindsEasyInstance,
                         ::testing::Values(MwuKind::kStandard,
                                           MwuKind::kSlate,
                                           MwuKind::kDistributed),
                         [](const auto& info) { return to_string(info.param); });

}  // namespace
}  // namespace mwr::core
