// Unit tests for util/stats: Welford accumulation, merging, percentiles,
// and the histogram used by the congestion and Fig 4 benches.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mwr::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats rs;
  rs.add(4.5);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.5);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 4.5);
  EXPECT_DOUBLE_EQ(rs.max(), 4.5);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats rs;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RngStream rng(1);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, NumericallyStableOnLargeOffsets) {
  RunningStats rs;
  // Classic catastrophic-cancellation trap for the naive sum-of-squares.
  for (int i = 0; i < 1000; ++i) rs.add(1e9 + (i % 2));
  EXPECT_NEAR(rs.variance(), 0.2502, 0.01);
}

TEST(Percentile, MedianOfOddCount) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.5);
}

TEST(Percentile, ExtremesAreMinMax) {
  const std::vector<double> xs = {4.0, -1.0, 9.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 9.0);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)percentile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 1.1), std::invalid_argument);
}

TEST(SpanHelpers, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_EQ(stddev_of({}), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 4
  h.add(-100.0); // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.bin_count(1), 0u);
}

TEST(Histogram, BinCentersAndFractions) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
  EXPECT_EQ(h.bin_fraction(0), 0.0);  // empty histogram
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 1.0);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, RenderMentionsEveryBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(0.6);
  h.add(3.5);
  const std::string rendered = h.render(10);
  EXPECT_NE(rendered.find('#'), std::string::npos);
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 4);
}

// Property: Welford mean/stddev of uniform samples converge to theory.
class StatsConvergence : public ::testing::TestWithParam<int> {};

TEST_P(StatsConvergence, UniformMoments) {
  RngStream rng(GetParam());
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(rng.uniform());
  EXPECT_NEAR(rs.mean(), 0.5, 0.005);
  EXPECT_NEAR(rs.stddev(), std::sqrt(1.0 / 12.0), 0.005);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsConvergence, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace mwr::util
