// Unit + integration tests for apr/campaign: multi-bug repair with pool
// reuse and incremental suite growth (§III-C amortization).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "apr/campaign.hpp"
#include "apr/campaign_session.hpp"
#include "datasets/scenario.hpp"
#include "obs/registry.hpp"
#include "obs/serialization.hpp"

namespace mwr::apr {
namespace {

datasets::ScenarioSpec toy_spec() {
  datasets::ScenarioSpec spec;
  spec.name = "campaign-toy";
  spec.statements = 2000;
  spec.tests = 12;
  spec.coverage = 0.7;
  spec.safe_rate = 0.55;
  spec.repair_rate = 0.02;
  spec.optimum = 30;
  spec.min_repair_edits = 1;
  spec.seed = 71;
  return spec;
}

CampaignConfig fast_config() {
  CampaignConfig config;
  config.bugs = 4;
  config.pool.target_size = 1500;
  config.pool.seed = 1;
  config.repair.agents = 32;
  config.repair.max_iterations = 200;
  config.repair.seed = 2;
  return config;
}

TEST(Campaign, RepairsASequenceOfBugsFromOnePool) {
  const auto outcome = run_campaign(toy_spec(), fast_config());
  ASSERT_EQ(outcome.bugs.size(), 4u);
  EXPECT_EQ(outcome.repaired(), 4u);
  EXPECT_GT(outcome.precompute_runs, 0u);
  EXPECT_EQ(outcome.initial_pool_size, 1500u);
}

TEST(Campaign, FirstBugPaysNoMaintenance) {
  const auto outcome = run_campaign(toy_spec(), fast_config());
  EXPECT_EQ(outcome.bugs.front().maintenance_runs, 0u);
  EXPECT_EQ(outcome.bugs.front().pool_dropped, 0u);
  EXPECT_EQ(outcome.bugs.front().pool_size, 1500u);
}

TEST(Campaign, SuiteGrowthDropsPoolMembersIncrementally) {
  const auto outcome = run_campaign(toy_spec(), fast_config());
  // After the first repaired bug the suite has grown, so bug 1 pays a
  // revalidation pass and typically loses a few members.
  ASSERT_GE(outcome.bugs.size(), 2u);
  EXPECT_GT(outcome.bugs[1].maintenance_runs, 0u);
  std::size_t total_dropped = 0;
  for (const auto& bug : outcome.bugs) total_dropped += bug.pool_dropped;
  EXPECT_GT(total_dropped, 0u);
  // Pool sizes are non-increasing across the campaign.
  for (std::size_t i = 1; i < outcome.bugs.size(); ++i) {
    EXPECT_LE(outcome.bugs[i].pool_size, outcome.bugs[i - 1].pool_size);
  }
}

TEST(Campaign, GrowSuiteDisabledSkipsMaintenance) {
  auto config = fast_config();
  config.grow_suite = false;
  const auto outcome = run_campaign(toy_spec(), config);
  for (const auto& bug : outcome.bugs) {
    EXPECT_EQ(bug.maintenance_runs, 0u) << "bug " << bug.bug_id;
    EXPECT_EQ(bug.pool_dropped, 0u);
  }
}

TEST(Campaign, AmortizedCostBeatsRebuildingPerBug) {
  const auto outcome = run_campaign(toy_spec(), fast_config());
  const double rebuild_per_bug =
      static_cast<double>(outcome.precompute_runs) + outcome.mean_bug_cost();
  EXPECT_LT(outcome.amortized_bug_cost(), rebuild_per_bug);
}

TEST(Campaign, CostAccessorsAreConsistent) {
  const auto outcome = run_campaign(toy_spec(), fast_config());
  const double spread = static_cast<double>(outcome.precompute_runs) /
                        static_cast<double>(outcome.bugs.size());
  EXPECT_NEAR(outcome.amortized_bug_cost(),
              outcome.mean_bug_cost() + spread, 1e-9);
}

TEST(Campaign, BugsDifferInTheirRelevanceSets) {
  // Each bug_id re-rolls the repair-relevance draw: a patch that repairs
  // bug 0 does not repair bug 1 (with overwhelming probability), which is
  // what makes the campaign a sequence of distinct searches.
  auto spec0 = toy_spec();
  auto spec1 = toy_spec();
  spec1.bug_id = 1;
  const ProgramModel program0(spec0);
  const ProgramModel program1(spec1);
  const TestOracle oracle0(program0);
  const TestOracle oracle1(program1);
  PoolConfig pool_config;
  pool_config.target_size = 1500;
  pool_config.seed = 1;
  const auto pool = MutationPool::precompute(oracle0, pool_config);
  MwRepairConfig repair_config;
  repair_config.agents = 32;
  repair_config.max_iterations = 200;
  repair_config.seed = 2;
  const MwRepair repair(repair_config);
  const auto outcome = repair.run(oracle0, pool);
  ASSERT_TRUE(outcome.repaired);
  EXPECT_TRUE(oracle0.evaluate(outcome.patch).is_repair());
  EXPECT_FALSE(oracle1.evaluate(outcome.patch).is_repair());
}

TEST(Campaign, DeterministicPerSeeds) {
  const auto a = run_campaign(toy_spec(), fast_config());
  const auto b = run_campaign(toy_spec(), fast_config());
  ASSERT_EQ(a.bugs.size(), b.bugs.size());
  for (std::size_t i = 0; i < a.bugs.size(); ++i) {
    EXPECT_EQ(a.bugs[i].repaired, b.bugs[i].repaired);
    EXPECT_EQ(a.bugs[i].online_probes, b.bugs[i].online_probes);
    EXPECT_EQ(a.bugs[i].pool_dropped, b.bugs[i].pool_dropped);
  }
}

TEST(Campaign, ZeroBugCampaignFinalizesInsteadOfRunningForever) {
  // bugs == 0 must reach kDone after precompute: the finish_bug boundary
  // check (`bug_index_ >= bugs`) can never fire for it, so without the
  // kBugStart guard the session marched bug 0, 1, 2, ... forever —
  // pinning a residency slot and wedging a served daemon's drain().
  auto config = fast_config();
  config.bugs = 0;
  CampaignSession session(toy_spec(), config);
  const std::size_t used = session.step(/*budget=*/16);
  EXPECT_TRUE(session.done());
  EXPECT_LE(used, 2u);  // precompute + finalize, nothing else
  EXPECT_TRUE(session.outcome().bugs.empty());
}

TEST(Campaign, SuiteSizeIsCappedAtTheOracleLimit) {
  auto spec = toy_spec();
  spec.tests = 62;  // two repairs away from the 64-test model cap
  auto config = fast_config();
  config.bugs = 6;
  const auto outcome = run_campaign(spec, config);
  // No bug may crash the oracle; the campaign must complete.
  EXPECT_EQ(outcome.bugs.size(), 6u);
}

TEST(Campaign, MetricsSnapshotIsValidJsonWithNonzeroProbeCounts) {
  // The --metrics-out CLI path end to end: reset the global registry, run
  // a campaign, write the snapshot, and parse it back.
  auto& metrics = obs::MetricsRegistry::global();
  metrics.reset();
  const auto outcome = run_campaign(toy_spec(), fast_config());
  ASSERT_GT(outcome.repaired(), 0u);

  const std::string path = ::testing::TempDir() + "mwr_campaign_metrics.json";
  metrics.write_json(path);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto snapshot = obs::JsonValue::parse(buffer.str());
  std::remove(path.c_str());

  EXPECT_EQ(snapshot.at("schema").as_string(), "mwr-metrics-v1");
  const auto& counters = snapshot.at("counters");
  EXPECT_GT(counters.at("repair.online.probes").as_double(), 0.0);
  EXPECT_GT(counters.at("repair.online.cycles").as_double(), 0.0);
  EXPECT_GT(counters.at("pool.candidates_tried").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(counters.at("campaign.bugs_attempted").as_double(), 4.0);
  EXPECT_DOUBLE_EQ(
      counters.at("campaign.bugs_repaired").as_double(),
      static_cast<double>(outcome.repaired()));
  // Phase wall-time histograms carry one observation per phase instance.
  const auto& histograms = snapshot.at("histograms");
  EXPECT_GT(histograms.at("phase.precompute.seconds").at("count").as_double(),
            0.0);
  EXPECT_GT(histograms.at("phase.online.seconds").at("count").as_double(),
            0.0);
  // Convergence status: every toy bug repairs, so the flag reads 1.
  EXPECT_DOUBLE_EQ(snapshot.at("gauges").at("campaign.converged").as_double(),
                   1.0);
}

TEST(BugId, OnlyRepairRelevanceDependsOnIt) {
  auto spec_a = toy_spec();
  auto spec_b = toy_spec();
  spec_b.bug_id = 3;
  const ProgramModel program_a(spec_a);
  const ProgramModel program_b(spec_b);
  const TestOracle oracle_a(program_a);
  const TestOracle oracle_b(program_b);
  // Same coverage and safety; different relevance sets.
  EXPECT_EQ(program_a.covered_statements(), program_b.covered_statements());
  util::RngStream rng(5);
  bool relevance_differs = false;
  for (int i = 0; i < 100000; ++i) {
    const Mutation m = random_mutation(program_a, rng);
    EXPECT_EQ(oracle_a.is_safe(m), oracle_b.is_safe(m));
    if (oracle_a.is_repair_relevant(m) != oracle_b.is_repair_relevant(m)) {
      relevance_differs = true;
    }
  }
  EXPECT_TRUE(relevance_differs);
}

}  // namespace
}  // namespace mwr::apr
