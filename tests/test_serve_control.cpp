// The socket layer of the campaign server: MWRW frames over a real
// Unix-domain stream socket, the daemon request loop, and ServeClient.
// (Everything socket-free about the server lives in test_serve.cpp.)
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "parallel/transport/wire.hpp"
#include "serve/client.hpp"
#include "serve/control.hpp"
#include "serve/control_socket.hpp"
#include "serve/server.hpp"

namespace mwr::serve {
namespace {

using parallel::transport::FrameKind;
using parallel::transport::WireFrame;

std::string unique_socket_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("mwr-" + tag + "-" + std::to_string(::getpid()) + ".sock"))
      .string();
}

TEST(ControlSocket, FramesRoundTripIncludingLargePayloads) {
  const std::string path = unique_socket_path("ctl-roundtrip");
  ControlListener listener(path);

  std::unique_ptr<ControlConn> client = connect_control(path);
  ASSERT_TRUE(listener.wait_readable({}, 1000));
  std::unique_ptr<ControlConn> served = listener.accept_one();
  ASSERT_NE(served, nullptr);

  // Small control frame and a large one — wider than one 64 KiB read
  // chunk, but small enough to fit the kernel socket buffer (this test
  // queues both frames before draining, on a single thread).
  WireFrame small;
  small.kind = FrameKind::kStatus;
  small.value = 42;
  WireFrame large;
  large.kind = FrameKind::kSubmit;
  large.payload.assign(12000, 0.5);

  ASSERT_TRUE(client->send_frame(small));
  ASSERT_TRUE(client->send_frame(large));

  const auto got_small = served->recv_frame();
  ASSERT_TRUE(got_small.has_value());
  EXPECT_EQ(*got_small, small);
  const auto got_large = served->recv_frame();
  ASSERT_TRUE(got_large.has_value());
  EXPECT_EQ(*got_large, large);

  // Orderly EOF surfaces as nullopt, not an exception.
  client.reset();
  EXPECT_FALSE(served->recv_frame().has_value());
}

TEST(ControlSocket, PumpDrainsWithoutBlocking) {
  const std::string path = unique_socket_path("ctl-pump");
  ControlListener listener(path);
  std::unique_ptr<ControlConn> client = connect_control(path);
  std::unique_ptr<ControlConn> served;
  for (int i = 0; i < 100 && !served; ++i) {
    (void)listener.wait_readable({}, 50);
    served = listener.accept_one();
  }
  ASSERT_NE(served, nullptr);

  std::vector<WireFrame> frames;
  EXPECT_TRUE(served->pump(frames));  // nothing queued: alive, no frames
  EXPECT_TRUE(frames.empty());

  ASSERT_TRUE(client->send_frame(encode_status_request(7)));
  ASSERT_TRUE(client->send_frame(encode_checkpoint_request()));
  for (int i = 0; i < 100 && frames.size() < 2; ++i) {
    (void)listener.wait_readable({served.get()}, 50);
    ASSERT_TRUE(served->pump(frames));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].kind, FrameKind::kStatus);
  EXPECT_EQ(frames[1].kind, FrameKind::kCheckpoint);
}

TEST(ControlSocket, PumpReportsDeadPeerAfterMidFrameEof) {
  const std::string path = unique_socket_path("ctl-midframe-eof");
  ControlListener listener(path);
  std::unique_ptr<ControlConn> client = connect_control(path);
  std::unique_ptr<ControlConn> served;
  for (int i = 0; i < 100 && !served; ++i) {
    (void)listener.wait_readable({}, 50);
    served = listener.accept_one();
  }
  ASSERT_NE(served, nullptr);

  // One whole frame, then the first half of a second one, then close:
  // a peer dying mid-frame.
  const WireFrame whole = encode_status_request(7);
  std::vector<std::uint8_t> bytes;
  parallel::transport::encode_frame(whole, bytes);
  ASSERT_TRUE(client->send_frame(whole));
  const std::size_t half = bytes.size() / 2;
  ASSERT_GT(half, 0u);
  ASSERT_EQ(::send(client->fd(), bytes.data(), half, MSG_NOSIGNAL),
            static_cast<ssize_t>(half));
  client.reset();

  // The truncated tail can never complete, so pump must hand the caller
  // the whole frame and then report the connection dead — leaving it
  // resident turned the daemon's poll loop into a busy spin on an EOF'd
  // fd and leaked the connection forever.
  std::vector<WireFrame> frames;
  bool alive = true;
  for (int i = 0; i < 100 && alive; ++i) {
    (void)listener.wait_readable({served.get()}, 50);
    alive = served->pump(frames);
  }
  EXPECT_FALSE(alive);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], whole);
}

// A miniature mwr_served loop: accept one client, service requests
// between scheduling epochs, exit on drain-complete after shutdown.
void daemon_loop(const std::string& path, std::atomic<bool>* failed) {
  try {
    ServerConfig config;
    config.workers = 2;
    config.quantum = 8;
    CampaignServer server(config);
    ControlListener listener(path);
    std::vector<std::unique_ptr<ControlConn>> conns;
    bool shutting_down = false;
    for (;;) {
      while (auto conn = listener.accept_one()) conns.push_back(std::move(conn));
      for (auto it = conns.begin(); it != conns.end();) {
        std::vector<WireFrame> frames;
        bool alive = (*it)->pump(frames);
        for (const WireFrame& frame : frames) {
          WireFrame reply;
          switch (frame.kind) {
            case FrameKind::kSubmit: {
              SubmitReply out;
              if (!shutting_down) {
                try {
                  if (const auto id =
                          server.submit(decode_submit_request(frame))) {
                    out.accepted = true;
                    out.campaign_id = *id;
                  }
                } catch (const std::invalid_argument&) {
                  // Unknown scenario et al.: reject, keep serving.
                }
              }
              out.resident = server.resident();
              reply = encode_submit_reply(out);
              break;
            }
            case FrameKind::kStatus:
              reply = encode_status_reply(
                  frame.value, server.status(decode_status_request(frame)));
              break;
            case FrameKind::kResult:
              reply =
                  encode_result_reply(server.result(decode_result_request(frame)));
              break;
            case FrameKind::kCheckpoint:
              reply = encode_checkpoint_reply(CheckpointReply{});
              break;
            case FrameKind::kShutdown:
              shutting_down = true;
              reply = encode_shutdown_reply(server.resident());
              break;
            default:
              throw std::runtime_error("unexpected frame");
          }
          if (!(*it)->send_frame(reply)) {
            alive = false;
            break;
          }
        }
        it = alive ? it + 1 : conns.erase(it);
      }
      if (shutting_down && server.resident() == 0) break;
      if (server.resident() > 0) {
        (void)server.run_epoch();
        continue;
      }
      std::vector<ControlConn*> raw;
      for (const auto& conn : conns) raw.push_back(conn.get());
      (void)listener.wait_readable(raw, 20);
    }
    if (server.starved_epochs() != 0) *failed = true;
  } catch (...) {
    *failed = true;
  }
}

// Joins the daemon thread even when an ASSERT bails out of the test
// body early (a joinable std::thread destructor would call terminate).
struct DaemonHandle {
  std::string path;
  std::thread thread;
  ~DaemonHandle() {
    if (!thread.joinable()) return;
    try {
      (void)ServeClient(path, /*connect_timeout_ms=*/1000).shutdown();
    } catch (...) {
      // Daemon already gone; the join below returns immediately.
    }
    thread.join();
  }
};

TEST(ServeClient, SubmitsPollsAndFetchesResultsOverTheWire) {
  const std::string path = unique_socket_path("ctl-e2e");
  std::atomic<bool> daemon_failed{false};
  DaemonHandle daemon{path, std::thread(daemon_loop, path, &daemon_failed)};

  {
    ServeClient client(path);
    const std::vector<std::string> families = {"units", "Chart26", "Math8"};
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 6; ++i) {
      SubmitRequest request;
      request.scenario = families[static_cast<std::size_t>(i) % 3];
      request.bugs = 2;
      request.pool_target = 120;
      request.pool_attempts = 10000;
      request.arms = 16;
      request.agents = 4;
      request.max_iterations = 50;
      request.repair_seed = 500 + static_cast<std::uint64_t>(i);
      const SubmitReply reply = client.submit(request);
      ASSERT_TRUE(reply.accepted);
      ids.push_back(reply.campaign_id);
    }

    // Unknown scenarios are rejected without killing the daemon.
    SubmitRequest bogus;
    bogus.scenario = "no-such-program";
    EXPECT_FALSE(client.submit(bogus).accepted);

    for (const std::uint64_t id : ids) {
      StatusReply status;
      for (int i = 0; i < 10000; ++i) {
        status = client.status(id);
        if (status.done) break;
      }
      ASSERT_TRUE(status.known);
      ASSERT_TRUE(status.done) << "campaign " << id << " never finished";
      EXPECT_EQ(status.bugs_total, 2u);
      EXPECT_NE(status.trajectory_hash, 0u);

      const ResultReply result = client.result(id);
      ASSERT_TRUE(result.ready);
      EXPECT_NE(result.outcome_json.find("\"mwr-campaign-outcome-v1\""),
                std::string::npos);
      EXPECT_NE(result.outcome_json.find("\"mode\": \"campaign\""),
                std::string::npos);
    }

    EXPECT_EQ(client.status(9999).known, false);
    EXPECT_EQ(client.result(9999).ready, false);
    (void)client.shutdown();
  }

  daemon.thread.join();
  EXPECT_FALSE(daemon_failed.load());
}

}  // namespace
}  // namespace mwr::serve
