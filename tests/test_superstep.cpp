// Tests for the bounded-thread superstep engine: rank multiplexing,
// schedule-independence of communicating programs, exception propagation
// out of a mid-superstep failure, deadlock detection with clean unwinding,
// and the engine's observability counters.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/registry.hpp"
#include "parallel/barrier.hpp"
#include "parallel/comm.hpp"
#include "parallel/mailbox.hpp"
#include "parallel/superstep.hpp"

namespace mwr::parallel {
namespace {

TEST(SuperstepEngine, RunsEveryRankOnASingleWorker) {
  constexpr std::size_t kRanks = 37;
  SuperstepEngine::Config config;
  config.workers = 1;
  SuperstepEngine engine(kRanks, config);
  EXPECT_EQ(engine.ranks(), kRanks);
  EXPECT_EQ(engine.workers(), 1u);

  std::vector<int> visits(kRanks, 0);
  engine.run([&](int rank) { ++visits[static_cast<std::size_t>(rank)]; });
  for (const int v : visits) EXPECT_EQ(v, 1);
}

TEST(SuperstepEngine, ZeroRanksRejected) {
  EXPECT_THROW(SuperstepEngine(0, {}), std::invalid_argument);
}

TEST(SuperstepEngine, BarriersMultiplexManyRanksPerWorker) {
  // 64 ranks on 2 workers crossing 5 barriers: between consecutive
  // barriers every rank must have run exactly once more.
  constexpr std::size_t kRanks = 64;
  constexpr int kCycles = 5;
  SuperstepEngine::Config config;
  config.workers = 2;
  SuperstepEngine engine(kRanks, config);
  CountingBarrier barrier(kRanks);

  std::atomic<int> entered{0};
  std::vector<int> rounds(kRanks, 0);
  engine.run([&](int rank) {
    for (int c = 0; c < kCycles; ++c) {
      ++rounds[static_cast<std::size_t>(rank)];
      entered.fetch_add(1, std::memory_order_relaxed);
      barrier.arrive_and_wait([&] {
        // Completion runs with all ranks arrived: the round count must be
        // uniform at every superstep boundary.
        EXPECT_EQ(entered.load(std::memory_order_relaxed),
                  static_cast<int>(kRanks) * (c + 1));
      });
    }
  });
  EXPECT_EQ(barrier.generations(), static_cast<std::uint64_t>(kCycles));
  for (const int r : rounds) EXPECT_EQ(r, kCycles);
}

// A communicating SPMD program (message ring + reduction) must produce the
// same answer on every substrate and worker count — the engine adds no
// observable scheduling freedom.
std::vector<double> ring_program_totals(RunPolicy policy) {
  constexpr std::size_t kRanks = 16;
  constexpr int kRounds = 8;
  std::vector<double> totals(kRanks, 0.0);
  CommWorld world(kRanks, policy);
  world.run([&](Comm& comm) {
    const int n = comm.size();
    double held = comm.rank();
    for (int round = 0; round < kRounds; ++round) {
      comm.send((comm.rank() + 1) % n, /*tag=*/7, {held});
      held = comm.recv((comm.rank() + n - 1) % n, /*tag=*/7).payload.at(0);
      totals[static_cast<std::size_t>(comm.rank())] += held;
      comm.barrier();
    }
  });
  return totals;
}

TEST(SuperstepEngine, RingProgramIsIdenticalAcrossSubstrates) {
  const auto reference = ring_program_totals(RunPolicy::thread_per_rank());
  EXPECT_EQ(std::accumulate(reference.begin(), reference.end(), 0.0),
            8.0 * (15.0 * 16.0 / 2.0));
  for (const std::size_t workers : {1u, 2u, 4u}) {
    EXPECT_EQ(reference, ring_program_totals(RunPolicy::superstep(workers)))
        << "workers=" << workers;
  }
}

TEST(SuperstepEngine, BodyExceptionUnwindsBlockedPeers) {
  // Rank 0 throws mid-superstep while ranks 1 and 2 are parked at a
  // 3-party barrier that can never complete.  The engine must unwind the
  // blocked fibers (destructors run, code after the barrier does not) and
  // rethrow the original exception.
  constexpr std::size_t kRanks = 3;
  SuperstepEngine::Config config;
  config.workers = 2;
  SuperstepEngine engine(kRanks, config);
  CountingBarrier barrier(kRanks);

  std::vector<int> unwound(kRanks, 0);
  std::vector<int> passed_barrier(kRanks, 0);
  struct UnwindProbe {
    int* flag;
    ~UnwindProbe() { *flag = 1; }
  };
  EXPECT_THROW(
      engine.run([&](int rank) {
        const auto r = static_cast<std::size_t>(rank);
        UnwindProbe probe{&unwound[r]};
        if (rank == 0) throw std::logic_error("rank 0 failed");
        barrier.arrive_and_wait();
        passed_barrier[r] = 1;
      }),
      std::logic_error);
  for (std::size_t r = 0; r < kRanks; ++r) {
    EXPECT_EQ(unwound[r], 1) << "rank " << r << " stack did not unwind";
  }
  EXPECT_EQ(passed_barrier[1], 0);
  EXPECT_EQ(passed_barrier[2], 0);
}

TEST(SuperstepEngine, DeadlockIsDetectedAndUnwound) {
  // Rank 0 receives a message nobody sends; rank 1 finishes.  A
  // thread-per-rank world would hang — the engine detects that every
  // unfinished rank is blocked, unwinds rank 0, and reports the deadlock.
  SuperstepEngine::Config config;
  config.workers = 1;
  SuperstepEngine engine(2, config);
  Mailbox silent;
  int unwound = 0;
  struct UnwindProbe {
    int* flag;
    ~UnwindProbe() { *flag = 1; }
  };
  try {
    engine.run([&](int rank) {
      if (rank == 0) {
        UnwindProbe probe{&unwound};
        (void)silent.recv();
        FAIL() << "recv on a silent mailbox returned";
      }
    });
    FAIL() << "deadlock not reported";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
  EXPECT_EQ(unwound, 1);
}

TEST(SuperstepEngine, IsReusableAcrossRuns) {
  // The persistent-engine contract (DESIGN.md §14): one engine serves
  // many runs — worker threads and fiber stacks are recycled, and a run
  // that throws leaves the engine ready for the next.
  constexpr std::size_t kRanks = 24;
  constexpr int kRuns = 6;
  SuperstepEngine::Config config;
  config.workers = 2;
  SuperstepEngine engine(kRanks, config);
  CountingBarrier barrier(kRanks);

  std::vector<int> visits(kRanks, 0);
  for (int run = 0; run < kRuns; ++run) {
    engine.run([&](int rank) {
      ++visits[static_cast<std::size_t>(rank)];
      barrier.arrive_and_wait();
    });
  }
  for (const int v : visits) EXPECT_EQ(v, kRuns);
  EXPECT_EQ(barrier.generations(), static_cast<std::uint64_t>(kRuns));

  // A failed run must not poison the engine.
  EXPECT_THROW(engine.run([&](int rank) {
                 if (rank == 3) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  std::vector<int> after(kRanks, 0);
  engine.run([&](int rank) { ++after[static_cast<std::size_t>(rank)]; });
  for (const int v : after) EXPECT_EQ(v, 1);
}

TEST(SuperstepEngine, ParallelForCoversEveryIndexOnce) {
  for (const std::size_t workers : {1u, 2u, 4u}) {
    SuperstepEngine::Config config;
    config.workers = workers;
    SuperstepEngine engine(1, config);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    // Repeated sweeps on one engine: the fiberless path must also be
    // reusable, including interleaved with fiber runs.
    for (int sweep = 0; sweep < 3; ++sweep) {
      engine.parallel_for(kCount, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
    }
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(std::memory_order_relaxed), 3)
          << "workers=" << workers << " i=" << i;
    }
    engine.parallel_for(0, [&](std::size_t) { FAIL() << "count == 0 ran"; });
  }
}

TEST(SuperstepEngine, ParallelForInterleavesWithFiberRuns) {
  SuperstepEngine::Config config;
  config.workers = 2;
  SuperstepEngine engine(4, config);
  std::atomic<int> total{0};
  engine.run([&](int) { total.fetch_add(1, std::memory_order_relaxed); });
  engine.parallel_for(
      64, [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  engine.run([&](int) { total.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(total.load(std::memory_order_relaxed), 4 + 64 + 4);
}

TEST(SuperstepEngine, ParallelForRethrowsFirstBodyError) {
  for (const std::size_t workers : {1u, 3u}) {
    SuperstepEngine::Config config;
    config.workers = workers;
    SuperstepEngine engine(1, config);
    EXPECT_THROW(engine.parallel_for(256,
                                     [&](std::size_t i) {
                                       if (i == 7)
                                         throw std::logic_error("bad index");
                                     }),
                 std::logic_error);
    // The engine stays usable after the failed sweep.
    std::atomic<int> ran{0};
    engine.parallel_for(
        16, [&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
    EXPECT_EQ(ran.load(std::memory_order_relaxed), 16);
  }
}

TEST(SuperstepEngine, CountsSuperstepsAndRunnableRanks) {
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t before =
      registry.counter("spmd.engine.supersteps").value();

  constexpr std::size_t kRanks = 8;
  constexpr int kCycles = 4;
  CommWorld world(kRanks, RunPolicy::superstep(1));
  world.run([&](Comm& comm) {
    for (int c = 0; c < kCycles; ++c) comm.barrier();
  });

  // Every completed barrier generation with a fiber party is one superstep
  // boundary.
  EXPECT_GE(registry.counter("spmd.engine.supersteps").value(),
            before + kCycles);
  EXPECT_GE(registry.gauge("spmd.engine.runnable_ranks").value(),
            static_cast<double>(kRanks));
}

}  // namespace
}  // namespace mwr::parallel
