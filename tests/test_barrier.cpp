// Unit tests for parallel/barrier: generation counting, reuse, and the
// wait-time accounting the precompute ablation relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "parallel/barrier.hpp"

namespace mwr::parallel {
namespace {

TEST(CountingBarrier, RejectsZeroParties) {
  EXPECT_THROW(CountingBarrier(0), std::invalid_argument);
}

TEST(CountingBarrier, SinglePartyNeverBlocks) {
  CountingBarrier barrier(1);
  for (int i = 0; i < 10; ++i) barrier.arrive_and_wait();
  EXPECT_EQ(barrier.generations(), 10u);
}

TEST(CountingBarrier, AllPartiesPassTogether) {
  constexpr std::size_t kParties = 4;
  CountingBarrier barrier(kParties);
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.arrive_and_wait();
      // Everyone must have arrived before anyone proceeds.
      EXPECT_EQ(before.load(), static_cast<int>(kParties));
      after.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(after.load(), static_cast<int>(kParties));
  EXPECT_EQ(barrier.generations(), 1u);
}

TEST(CountingBarrier, IsReusableAcrossGenerations) {
  constexpr std::size_t kParties = 3;
  constexpr int kRounds = 50;
  CountingBarrier barrier(kParties);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // Between generations the counter is an exact multiple of parties.
        EXPECT_EQ(counter.load() % kParties, 0u);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(barrier.generations(), 2u * kRounds);
}

TEST(CountingBarrier, WaitTimeAccumulatesWhenOnePartyIsSlow) {
  CountingBarrier barrier(2);
  std::thread fast([&] { barrier.arrive_and_wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  barrier.arrive_and_wait();
  fast.join();
  // The fast thread waited ~50ms for the slow one.
  EXPECT_GE(barrier.total_wait_seconds(), 0.03);
}

TEST(CountingBarrier, PartiesAccessor) {
  CountingBarrier barrier(7);
  EXPECT_EQ(barrier.parties(), 7u);
}

TEST(CountingBarrier, CompletionRunsOncePerGenerationBeforeRelease) {
  constexpr std::size_t kParties = 4;
  constexpr int kRounds = 25;
  CountingBarrier barrier(kParties);
  std::atomic<int> arrived{0};
  std::atomic<int> completions{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        arrived.fetch_add(1);
        barrier.arrive_and_wait([&] {
          // The completion sees every party arrived and none released:
          // the per-generation bookkeeping slot.
          EXPECT_EQ(arrived.load() % kParties, 0u);
          completions.fetch_add(1);
        });
        EXPECT_GE(completions.load(), r + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completions.load(), kRounds);
  EXPECT_EQ(barrier.generations(), static_cast<std::uint64_t>(kRounds));
}

}  // namespace
}  // namespace mwr::parallel
