// Unit tests for core/regret: the instrumented runner and the reference
// envelope.
#include <gtest/gtest.h>

#include "core/regret.hpp"
#include "datasets/distributions.hpp"

namespace mwr::core {
namespace {

TEST(RegretTrace, EmptyTraceIsZero) {
  RegretTrace trace;
  EXPECT_DOUBLE_EQ(trace.total(), 0.0);
  EXPECT_DOUBLE_EQ(trace.at_cycle(5), 0.0);
}

TEST(RegretTrace, AtCycleIndexesAndClamps) {
  RegretTrace trace;
  trace.cumulative = {1.0, 3.0, 6.0};
  EXPECT_DOUBLE_EQ(trace.at_cycle(0), 0.0);
  EXPECT_DOUBLE_EQ(trace.at_cycle(1), 1.0);
  EXPECT_DOUBLE_EQ(trace.at_cycle(3), 6.0);
  EXPECT_DOUBLE_EQ(trace.at_cycle(99), 6.0);
  EXPECT_DOUBLE_EQ(trace.total(), 6.0);
}

TEST(RunWithRegret, CumulativeRegretIsMonotoneNonDecreasing) {
  const auto options = datasets::make_random(32, 3);
  MwuConfig config;
  config.num_options = 32;
  config.max_iterations = 100;
  config.convergence_tol = 0.0;
  const auto trace = run_mwu_with_regret(MwuKind::kStandard, options, config,
                                         util::RngStream(1));
  ASSERT_FALSE(trace.cumulative.empty());
  for (std::size_t i = 1; i < trace.cumulative.size(); ++i) {
    EXPECT_GE(trace.cumulative[i], trace.cumulative[i - 1]);
  }
  EXPECT_EQ(trace.probes_per_cycle, config.num_agents);
  EXPECT_EQ(trace.result.evaluations,
            trace.cumulative.size() * config.num_agents);
}

TEST(RunWithRegret, PerCycleRegretShrinksAsLearningProgresses) {
  // The average per-cycle regret over the last quarter of the horizon must
  // be well below the first quarter's — MWU is learning.
  OptionSet options("easy", {0.05, 0.05, 0.95, 0.05, 0.05, 0.05, 0.05, 0.05});
  MwuConfig config;
  config.num_options = 8;
  config.max_iterations = 200;
  config.convergence_tol = 0.0;
  const auto trace = run_mwu_with_regret(MwuKind::kStandard, options, config,
                                         util::RngStream(2));
  const std::size_t quarter = trace.cumulative.size() / 4;
  ASSERT_GT(quarter, 5u);
  const double early = trace.cumulative[quarter - 1];
  const double late =
      trace.cumulative.back() - trace.cumulative[3 * quarter - 1];
  EXPECT_LT(late, 0.5 * early);
}

TEST(RunWithRegret, StaysBelowTheAdversarialEnvelope) {
  const auto options = datasets::make_random(64, 5);
  MwuConfig config;
  config.num_options = 64;
  config.max_iterations = 300;
  config.convergence_tol = 0.0;
  for (const auto kind : {MwuKind::kStandard, MwuKind::kExp3}) {
    const auto trace =
        run_mwu_with_regret(kind, options, config, util::RngStream(6));
    const double probes = static_cast<double>(trace.result.evaluations);
    EXPECT_LT(trace.total(), adversarial_regret_bound(probes, 64, 2.0))
        << to_string(kind);
  }
}

TEST(RunWithRegret, IntractableDistributedShortCircuits) {
  const auto options = datasets::make_random(16384, 7);
  MwuConfig config;
  config.num_options = 16384;
  const auto trace = run_mwu_with_regret(MwuKind::kDistributed, options,
                                         config, util::RngStream(8));
  EXPECT_TRUE(trace.result.intractable);
  EXPECT_TRUE(trace.cumulative.empty());
}

TEST(AdversarialBound, GrowsAsSqrtT) {
  const double at_100 = adversarial_regret_bound(100, 64);
  const double at_400 = adversarial_regret_bound(400, 64);
  EXPECT_NEAR(at_400 / at_100, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(adversarial_regret_bound(0, 64), 0.0);
}

}  // namespace
}  // namespace mwr::core
